//===- ProofCache.cpp - Content-addressed proof result cache ---------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/ProofCache.h"

#include "support/Hash.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

namespace {

/// Parses one store line ("<16-hex key> V <time_ms>"). Strict: the
/// time field must be a full, garbage-free number. std::from_chars is
/// locale-independent by specification — std::stod honors LC_NUMERIC,
/// so under e.g. de_DE a store written elsewhere would silently parse
/// "12.5" as 12 and keep the ".5" as accepted trailing junk.
bool parseStoreLine(std::string_view S, uint64_t &Key, double &TimeMs) {
  if (S.size() < 19 || S.substr(16, 3) != " V ")
    return false;
  if (!hashFromHex(S.substr(0, 16), Key))
    return false;
  std::string_view Num = S.substr(19);
  double V = 0.0;
  auto [Ptr, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), V);
  if (Ec != std::errc() || Ptr != Num.data() + Num.size())
    return false;
  TimeMs = V;
  return true;
}

/// Fixed three-decimal formatting without touching the locale
/// machinery (snprintf "%f" writes the LC_NUMERIC decimal separator,
/// which parseStoreLine would then rightly reject).
std::string formatMs(double Ms) {
  if (!(Ms >= 0.0)) // Also catches NaN.
    Ms = 0.0;
  long long Milli = std::llround(Ms * 1000.0);
  std::string Frac = std::to_string(Milli % 1000);
  return std::to_string(Milli / 1000) + "." +
         std::string(3 - Frac.size(), '0') + Frac;
}

} // namespace

ProofCache::ProofCache(std::string DirIn) : Dir(std::move(DirIn)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    OpenError = "cannot create cache directory '" + Dir +
                "': " + EC.message();
    Dir.clear();
    return;
  }
  std::ifstream In(storePath());
  if (In) {
    std::string Line;
    while (std::getline(In, Line)) {
      // Unparseable lines are skipped, not fatal (a torn line from an
      // old pre-atomic store must not poison the whole cache).
      uint64_t Key = 0;
      double Ms = 0.0;
      if (!parseStoreLine(trim(Line), Key, Ms))
        continue;
      // Last write wins on duplicate keys (a pre-atomic store could
      // carry appended duplicates); flush() compacts to one line per
      // key, so the dedupe also self-heals the store.
      Entries[Key] = Entry{Ms, false};
    }
  }
  // Replay the write-ahead journal on top of the snapshot: results a
  // crashed (or still-running) sibling committed but never compacted.
  // Journal entries are newer than any snapshot line, so they win
  // duplicates. They stay flagged dirty — they are journal-durable
  // but must reach the snapshot at the next compaction.
  Wal.open(storePath() + ".wal");
  if (!Wal.ok() && OpenError.empty())
    OpenError = Wal.error();
  for (const std::string &Rec : Wal.recovered()) {
    uint64_t Key = 0;
    double Ms = 0.0;
    if (!parseStoreLine(trim(Rec), Key, Ms))
      continue;
    Entries.insert_or_assign(Key, Entry{Ms, true});
    ++JournalRecovered;
  }
}

ProofCache::~ProofCache() { flush(); }

std::string ProofCache::storePath() const {
  return (fs::path(Dir) / "proofs-v1.txt").string();
}

void ProofCache::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Dir.empty())
    return;
  bool AnyDirty = false;
  for (const auto &[Key, E] : Entries)
    if (E.Dirty) {
      AnyDirty = true;
      break;
    }
  // Compaction trigger: something to fold into the snapshot, or a
  // journal worth truncating. (Dirty entries are already journaled;
  // skipping here costs nothing but snapshot freshness.)
  if (!AnyDirty && Wal.sizeBytes() == 0)
    return;

  // Serialize concurrent flushers with an advisory lock on a sidecar
  // file. The store itself cannot carry the lock: the rename below
  // replaces its inode, and a lock on the old inode would no longer
  // exclude the next writer. The journal's own file lock is taken
  // *inside* the sidecar lock (commit() takes only the journal lock,
  // so the ordering is acyclic): a record a sibling commits while we
  // compact lands either in the journal bytes we fold in below or in
  // the journal after our truncate — never in neither.
  const std::string Lockfile = storePath() + ".lock";
  int LockFd = ::open(Lockfile.c_str(), O_CREAT | O_RDWR, 0644);
  if (LockFd >= 0)
    ::flock(LockFd, LOCK_EX);
  Wal.lock();
  auto Unlock = [&] {
    Wal.unlock();
    if (LockFd >= 0) {
      ::flock(LockFd, LOCK_UN);
      ::close(LockFd);
    }
  };

  // Merge entries a sibling process flushed after our load: the
  // replace-by-rename below writes the full union, so anything on
  // disk we have not seen yet must be folded in first or it would be
  // clobbered. Our own entries win ties (same key -> same verdict;
  // only the recorded solve time could differ).
  {
    std::ifstream In(storePath());
    std::string Line;
    while (In && std::getline(In, Line)) {
      uint64_t Key = 0;
      double Ms = 0.0;
      if (parseStoreLine(trim(Line), Key, Ms))
        Entries.try_emplace(Key, Entry{Ms, false});
    }
  }
  // And records siblings committed to the journal since our load.
  for (const std::string &Rec : Wal.readCommitted()) {
    uint64_t Key = 0;
    double Ms = 0.0;
    if (parseStoreLine(trim(Rec), Key, Ms))
      Entries.try_emplace(Key, Entry{Ms, false});
  }

  // Write the union to a temp file in the same directory, then
  // atomically swing the name over it with rename(2): a reader (or a
  // crash) can only ever observe the complete old store or the
  // complete new one, never a torn append. The temp name carries pid
  // plus a process-wide counter — two caches in one process must not
  // collide on a pid-only name.
  static std::atomic<unsigned> TmpCounter{0};
  const std::string Tmp = storePath() + ".tmp." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Store(Tmp, std::ios::trunc);
    if (!Store) {
      OpenError = "cannot write cache store '" + Tmp + "'";
      Unlock();
      return;
    }
    std::vector<std::pair<uint64_t, double>> Sorted;
    Sorted.reserve(Entries.size());
    for (const auto &[Key, E] : Entries)
      Sorted.emplace_back(Key, E.TimeMs);
    std::sort(Sorted.begin(), Sorted.end());
    for (const auto &[Key, Ms] : Sorted)
      Store << hashToHex(Key) << " V " << formatMs(Ms) << '\n';
    Store.flush();
    if (!Store) {
      OpenError = "cannot write cache store '" + Tmp + "'";
      std::error_code EC;
      fs::remove(Tmp, EC);
      Unlock();
      return;
    }
  }
  std::error_code EC;
  fs::rename(Tmp, storePath(), EC);
  if (EC) {
    OpenError = "cannot replace cache store '" + storePath() +
                "': " + EC.message();
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    Unlock();
    return;
  }
  // The snapshot now holds everything the journal did; truncate it.
  // (If the rename had failed we would keep the journal — entries
  // stay durable even when the snapshot cannot be replaced.)
  Wal.reset();
  for (auto &[Key, E] : Entries)
    E.Dirty = false;
  Unlock();
}

std::optional<smt::CheckResult> ProofCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  smt::CheckResult R;
  R.Status = smt::CheckStatus::Valid;
  R.TimeMs = It->second.TimeMs;
  R.Detail = "(cached)";
  return R;
}

void ProofCache::store(uint64_t Key, const smt::CheckResult &Result) {
  if (Result.Status != smt::CheckStatus::Valid)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Entries.try_emplace(Key);
  if (!Inserted)
    return;
  It->second.TimeMs = Result.TimeMs;
  It->second.Dirty = true;
  ++Stats.Stores;
  // Journal the entry now: from this moment a kill -9 cannot lose it,
  // whether or not a compaction ever runs. (Journal IO errors degrade
  // to snapshot-only durability; flush() still persists the entry.)
  Wal.commit(hashToHex(Key) + " V " + formatMs(Result.TimeMs));
}

bool ProofCache::contains(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.count(Key) != 0;
}

uint64_t ProofCache::journalBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Wal.sizeBytes();
}

CacheStats ProofCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t ProofCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
