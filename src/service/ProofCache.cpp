//===- ProofCache.cpp - Tiered content-addressed proof cache ---------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/ProofCache.h"

#include "support/Hash.h"
#include "support/StringUtil.h"
#include "wire/RemoteCache.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

namespace {

/// Write-behind batch size: the outbox is shipped to the server once
/// it holds this many records (and unconditionally at flush).
constexpr size_t OutboxBatch = 128;

/// Parses one store line ("<16-hex key> V <time_ms>"). Strict: the
/// time field must be a full, garbage-free number. std::from_chars is
/// locale-independent by specification — std::stod honors LC_NUMERIC,
/// so under e.g. de_DE a store written elsewhere would silently parse
/// "12.5" as 12 and keep the ".5" as accepted trailing junk.
bool parseStoreLine(std::string_view S, uint64_t &Key, double &TimeMs) {
  if (S.size() < 19 || S.substr(16, 3) != " V ")
    return false;
  if (!hashFromHex(S.substr(0, 16), Key))
    return false;
  std::string_view Num = S.substr(19);
  double V = 0.0;
  auto [Ptr, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), V);
  if (Ec != std::errc() || Ptr != Num.data() + Num.size())
    return false;
  TimeMs = V;
  return true;
}

/// Fixed three-decimal formatting without touching the locale
/// machinery (snprintf "%f" writes the LC_NUMERIC decimal separator,
/// which parseStoreLine would then rightly reject).
std::string formatMs(double Ms) {
  if (!(Ms >= 0.0)) // Also catches NaN.
    Ms = 0.0;
  long long Milli = std::llround(Ms * 1000.0);
  std::string Frac = std::to_string(Milli % 1000);
  return std::to_string(Milli / 1000) + "." +
         std::string(3 - Frac.size(), '0') + Frac;
}

std::string storeLine(uint64_t Key, double Ms) {
  return hashToHex(Key) + " V " + formatMs(Ms);
}

} // namespace

ProofCache::ProofCache(std::string DirIn) : Dir(std::move(DirIn)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    OpenError = "cannot create cache directory '" + Dir +
                "': " + EC.message();
    Dir.clear();
    return;
  }
  std::ifstream In(storePath());
  if (In) {
    std::string Line;
    while (std::getline(In, Line)) {
      // Unparseable lines are skipped, not fatal (a torn line from an
      // old pre-atomic store must not poison the whole cache).
      uint64_t Key = 0;
      double Ms = 0.0;
      if (!parseStoreLine(trim(Line), Key, Ms))
        continue;
      // Last write wins on duplicate keys (a pre-atomic store could
      // carry appended duplicates); flush() compacts to one line per
      // key, so the dedupe also self-heals the store.
      Entries[Key] = Entry{Ms, false, Origin::Disk};
    }
  }
  // Replay the write-ahead journal on top of the snapshot: results a
  // crashed (or still-running) sibling committed but never compacted.
  // Journal entries are newer than any snapshot line, so they win
  // duplicates. They stay flagged dirty — they are journal-durable
  // but must reach the snapshot at the next compaction.
  Wal.open(storePath() + ".wal");
  if (!Wal.ok() && OpenError.empty())
    OpenError = Wal.error();
  for (const std::string &Rec : Wal.recovered()) {
    uint64_t Key = 0;
    double Ms = 0.0;
    if (!parseStoreLine(trim(Rec), Key, Ms))
      continue;
    Entries.insert_or_assign(Key, Entry{Ms, true, Origin::Disk});
    ++JournalRecovered;
  }
}

ProofCache::~ProofCache() {
  flush();
  stopWorker();
}

std::string ProofCache::storePath() const {
  return (fs::path(Dir) / "proofs-v1.txt").string();
}

void ProofCache::flush() {
  // Ship locally proven results to the server before compacting, and
  // let in-flight remote work land — bounded, so a wedged server can
  // only delay exit by the remote deadline budget, never hang it.
  if (Remote) {
    std::unique_lock<std::mutex> Lock(RemoteMu);
    drainOutboxLocked(/*Force=*/true);
    awaitWorkerLocked(Lock, Remote->timeoutMs() * 3 + 1000);
  }

  std::lock_guard<std::mutex> Lock(Mu);
  if (Dir.empty())
    return;
  bool AnyDirty = false;
  for (const auto &[Key, E] : Entries)
    if (E.Dirty) {
      AnyDirty = true;
      break;
    }
  // Compaction trigger: something to fold into the snapshot, or a
  // journal worth truncating. (Dirty entries are already journaled;
  // skipping here costs nothing but snapshot freshness.)
  if (!AnyDirty && Wal.sizeBytes() == 0)
    return;

  // Serialize concurrent flushers with an advisory lock on a sidecar
  // file. The store itself cannot carry the lock: the rename below
  // replaces its inode, and a lock on the old inode would no longer
  // exclude the next writer. The journal's own file lock is taken
  // *inside* the sidecar lock (commit() takes only the journal lock,
  // so the ordering is acyclic): a record a sibling commits while we
  // compact lands either in the journal bytes we fold in below or in
  // the journal after our truncate — never in neither.
  const std::string Lockfile = storePath() + ".lock";
  int LockFd = ::open(Lockfile.c_str(), O_CREAT | O_RDWR, 0644);
  if (LockFd >= 0)
    ::flock(LockFd, LOCK_EX);
  Wal.lock();
  auto Unlock = [&] {
    Wal.unlock();
    if (LockFd >= 0) {
      ::flock(LockFd, LOCK_UN);
      ::close(LockFd);
    }
  };

  // Merge entries a sibling process flushed after our load: the
  // replace-by-rename below writes the full union, so anything on
  // disk we have not seen yet must be folded in first or it would be
  // clobbered. Our own entries win ties (same key -> same verdict;
  // only the recorded solve time could differ).
  {
    std::ifstream In(storePath());
    std::string Line;
    while (In && std::getline(In, Line)) {
      uint64_t Key = 0;
      double Ms = 0.0;
      if (parseStoreLine(trim(Line), Key, Ms))
        Entries.try_emplace(Key, Entry{Ms, false, Origin::Disk});
    }
  }
  // And records siblings committed to the journal since our load.
  for (const std::string &Rec : Wal.readCommitted()) {
    uint64_t Key = 0;
    double Ms = 0.0;
    if (parseStoreLine(trim(Rec), Key, Ms))
      Entries.try_emplace(Key, Entry{Ms, false, Origin::Disk});
  }

  // Write the union to a temp file in the same directory, then
  // atomically swing the name over it with rename(2): a reader (or a
  // crash) can only ever observe the complete old store or the
  // complete new one, never a torn append. The temp name carries pid
  // plus a process-wide counter — two caches in one process must not
  // collide on a pid-only name.
  static std::atomic<unsigned> TmpCounter{0};
  const std::string Tmp = storePath() + ".tmp." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Store(Tmp, std::ios::trunc);
    if (!Store) {
      OpenError = "cannot write cache store '" + Tmp + "'";
      Unlock();
      return;
    }
    std::vector<std::pair<uint64_t, double>> Sorted;
    Sorted.reserve(Entries.size());
    for (const auto &[Key, E] : Entries)
      Sorted.emplace_back(Key, E.TimeMs);
    std::sort(Sorted.begin(), Sorted.end());
    for (const auto &[Key, Ms] : Sorted)
      Store << hashToHex(Key) << " V " << formatMs(Ms) << '\n';
    Store.flush();
    if (!Store) {
      OpenError = "cannot write cache store '" + Tmp + "'";
      std::error_code EC;
      fs::remove(Tmp, EC);
      Unlock();
      return;
    }
  }
  // fsync data before rename, the directory after: without the second
  // sync the rename itself is not durable, and a crash could revive
  // the old snapshot after the journal truncation below — losing
  // proofs that were durable before compaction started.
  Journal::syncPath(Tmp);
  std::error_code EC;
  fs::rename(Tmp, storePath(), EC);
  if (EC) {
    OpenError = "cannot replace cache store '" + storePath() +
                "': " + EC.message();
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    Unlock();
    return;
  }
  Journal::syncDirOf(storePath());
  // The snapshot now holds everything the journal did; truncate it.
  // (If the rename had failed we would keep the journal — entries
  // stay durable even when the snapshot cannot be replaced.)
  Wal.reset();
  for (auto &[Key, E] : Entries)
    E.Dirty = false;
  Unlock();
}

void ProofCache::countHit(const Entry &E) {
  switch (E.From) {
  case Origin::Session:
    ++Stats.L1Hits;
    break;
  case Origin::Disk:
    ++Stats.L2Hits;
    break;
  case Origin::Remote:
    ++Stats.RemoteHits;
    break;
  }
}

std::optional<smt::CheckResult> ProofCache::lookup(uint64_t Key,
                                                   uint64_t AliasKey) {
  for (bool Waited = false;; Waited = true) {
    bool PushCanonical = false;
    double PromotedMs = 0.0;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Entries.find(Key);
      if (It == Entries.end() && AliasKey != 0) {
        auto AIt = Entries.find(AliasKey);
        if (AIt != Entries.end()) {
          // Slice-alias hit: the sliced obligation is proven, and it
          // is the weaker fact, so this obligation follows. Promote to
          // the canonical key so future runs (and the fleet, via
          // write-behind) hit directly. Not a Stores bump — promotion
          // records no new proof — and no per-promotion journal fsync:
          // the entry reaches the snapshot at the next compaction, and
          // losing it merely re-promotes from the still-present alias.
          Entry Promoted = AIt->second;
          Promoted.Dirty = true;
          It = Entries.emplace(Key, Promoted).first;
          PushCanonical = Remote != nullptr;
          PromotedMs = Promoted.TimeMs;
        }
      }
      if (It != Entries.end()) {
        ++Stats.Hits;
        countHit(It->second);
        smt::CheckResult R;
        R.Status = smt::CheckStatus::Valid;
        R.TimeMs = It->second.TimeMs;
        R.Detail = "(cached)";
        if (!PushCanonical)
          return R;
        // Outbox touch happens outside Mu (lock discipline: never hold
        // both), so finish the map work first.
        std::lock_guard<std::mutex> RLock(RemoteMu);
        Outbox.push_back(OutRecord{Key, PromotedMs});
        drainOutboxLocked(/*Force=*/false);
        return R;
      }
    }
    // Miss so far. If the key is still in remote prefetch flight, wait
    // (bounded) for the fetch to land and look again — once.
    if (Waited || !Remote)
      break;
    {
      std::unique_lock<std::mutex> Lock(RemoteMu);
      auto Pending = [&] {
        return InFlight.count(Key) != 0 ||
               (AliasKey != 0 && InFlight.count(AliasKey) != 0);
      };
      if (!Pending())
        break;
      auto Start = std::chrono::steady_clock::now();
      IdleCv.wait_for(Lock,
                      std::chrono::milliseconds(Remote->timeoutMs() * 3 +
                                                500),
                      [&] { return !Pending(); });
      RemoteWaitUs += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - Start)
              .count());
    }
  }
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Misses;
  return std::nullopt;
}

void ProofCache::store(uint64_t Key, const smt::CheckResult &Result,
                       uint64_t AliasKey) {
  if (Result.Status != smt::CheckStatus::Valid)
    return;
  std::vector<OutRecord> Push;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    std::vector<std::string> Lines;
    auto [It, Inserted] = Entries.try_emplace(Key);
    if (Inserted) {
      It->second = Entry{Result.TimeMs, true, Origin::Session};
      ++Stats.Stores;
      Lines.push_back(storeLine(Key, Result.TimeMs));
      if (Remote)
        Push.push_back(OutRecord{Key, Result.TimeMs});
    }
    if (AliasKey != 0) {
      // The slice-alias entry: the proof established the *sliced*
      // obligation (caller guarantees it), which is the reusable,
      // weaker fact. Same transaction, not a separate Store — reports
      // count proofs, not index entries.
      auto [AIt, AliasInserted] = Entries.try_emplace(AliasKey);
      if (AliasInserted) {
        AIt->second = Entry{Result.TimeMs, true, Origin::Session};
        Lines.push_back(storeLine(AliasKey, Result.TimeMs));
        if (Remote)
          Push.push_back(OutRecord{AliasKey, Result.TimeMs});
      }
    }
    if (Lines.empty())
      return;
    // Journal the entries now: from this moment a kill -9 cannot lose
    // them, whether or not a compaction ever runs. (Journal IO errors
    // degrade to snapshot-only durability; flush() still persists.)
    Wal.commit(Lines);
  }
  if (!Push.empty()) {
    std::lock_guard<std::mutex> RLock(RemoteMu);
    for (OutRecord &R : Push)
      Outbox.push_back(R);
    drainOutboxLocked(/*Force=*/false);
  }
}

size_t ProofCache::storeBatch(
    const std::vector<std::pair<uint64_t, double>> &Records) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Lines;
  size_t Inserted = 0;
  for (const auto &[Key, Ms] : Records) {
    auto [It, DidInsert] = Entries.try_emplace(Key);
    if (!DidInsert)
      continue;
    It->second = Entry{Ms, true, Origin::Session};
    ++Stats.Stores;
    ++Inserted;
    Lines.push_back(storeLine(Key, Ms));
  }
  // One journal transaction — one fsync — for the whole batch; this is
  // what makes server-side put-batches and bulk imports cheap.
  if (!Lines.empty())
    Wal.commit(Lines);
  return Inserted;
}

void ProofCache::attachRemote(std::unique_ptr<wire::RemoteCache> RemoteIn,
                              uint64_t OptionsHash) {
  if (!RemoteIn || Remote)
    return;
  Remote = std::move(RemoteIn);
  RemoteOptionsHash = OptionsHash;
  Worker = std::thread([this] { workerMain(); });
}

std::string ProofCache::remoteAddress() const {
  return Remote ? Remote->address() : std::string();
}

void ProofCache::prefetchAsync(const std::vector<uint64_t> &Keys) {
  if (!Remote)
    return;
  std::vector<uint64_t> Need;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (uint64_t K : Keys)
      if (K != 0 && Entries.count(K) == 0)
        Need.push_back(K);
  }
  if (Need.empty())
    return;
  std::lock_guard<std::mutex> RLock(RemoteMu);
  RemoteJob Job;
  Job.Kind = RemoteJob::Fetch;
  for (uint64_t K : Need)
    if (InFlight.insert(K).second) // Also dedupes within the batch.
      Job.Keys.push_back(K);
  if (!Job.Keys.empty())
    enqueueLocked(std::move(Job));
}

void ProofCache::enqueueLocked(RemoteJob Job) {
  Queue.push_back(std::move(Job));
  QueueCv.notify_one();
}

void ProofCache::drainOutboxLocked(bool Force) {
  if (Outbox.empty() || (!Force && Outbox.size() < OutboxBatch))
    return;
  RemoteJob Job;
  Job.Kind = RemoteJob::Push;
  Job.Records = std::move(Outbox);
  Outbox.clear();
  enqueueLocked(std::move(Job));
}

void ProofCache::awaitWorkerLocked(std::unique_lock<std::mutex> &Lock,
                                   unsigned BudgetMs) {
  auto Start = std::chrono::steady_clock::now();
  IdleCv.wait_for(Lock, std::chrono::milliseconds(BudgetMs),
                  [&] { return Queue.empty() && !WorkerBusy; });
  RemoteWaitUs += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

void ProofCache::workerMain() {
  std::unique_lock<std::mutex> Lock(RemoteMu);
  for (;;) {
    QueueCv.wait(Lock, [&] { return WorkerStop || !Queue.empty(); });
    if (Queue.empty())
      return; // Stop requested and nothing left to drain.
    RemoteJob Job = std::move(Queue.front());
    Queue.pop_front();
    WorkerBusy = true;
    Lock.unlock();
    if (Job.Kind == RemoteJob::Fetch)
      runFetch(std::move(Job.Keys));
    else
      runPush(std::move(Job.Records));
    Lock.lock();
    WorkerBusy = false;
    IdleCv.notify_all();
  }
}

void ProofCache::runFetch(std::vector<uint64_t> Keys) {
  std::vector<wire::ProofRecord> Found;
  std::string Error;
  bool Ok = Remote->multiGet(RemoteOptionsHash, Keys, Found, Error);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Ok) {
      std::vector<std::string> Lines;
      for (const wire::ProofRecord &R : Found) {
        auto [It, Inserted] = Entries.try_emplace(R.VcHash);
        if (!Inserted)
          continue;
        double Ms = static_cast<double>(R.SolveTimeMicros) / 1000.0;
        // Remote-fetched entries persist locally (journal-first, like
        // everything else) so the *next* run hits in L2 without a
        // network round-trip — but they are not Stores: that counter
        // means proofs this client contributed.
        It->second = Entry{Ms, true, Origin::Remote};
        Lines.push_back(storeLine(R.VcHash, Ms));
      }
      if (!Lines.empty())
        Wal.commit(Lines); // One fsync for the whole prefetch batch.
      if (Found.size() < Keys.size())
        Stats.RemoteMisses += Keys.size() - Found.size();
    } else {
      ++Stats.RemoteErrors;
    }
  }
  std::lock_guard<std::mutex> RLock(RemoteMu);
  for (uint64_t K : Keys)
    InFlight.erase(K);
  IdleCv.notify_all();
}

void ProofCache::runPush(std::vector<OutRecord> Records) {
  std::vector<wire::ProofRecord> Recs;
  Recs.reserve(Records.size());
  for (const OutRecord &R : Records) {
    wire::ProofRecord P;
    P.VcHash = R.Key;
    P.OptionsHash = RemoteOptionsHash;
    P.SolveTimeMicros = static_cast<uint64_t>(
        std::llround(std::max(R.TimeMs, 0.0) * 1000.0));
    Recs.push_back(std::move(P));
  }
  uint32_t Accepted = 0;
  std::string Error;
  if (!Remote->putBatch(Recs, Accepted, Error)) {
    // Dropped on the floor by design: the records are locally durable,
    // the server just does not learn them this run.
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stats.RemoteErrors;
  }
}

void ProofCache::stopWorker() {
  {
    std::lock_guard<std::mutex> Lock(RemoteMu);
    if (!Worker.joinable())
      return;
    WorkerStop = true;
    QueueCv.notify_all();
  }
  Worker.join();
}

bool ProofCache::contains(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.count(Key) != 0;
}

uint64_t ProofCache::journalBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Wal.sizeBytes();
}

CacheStats ProofCache::stats() const {
  CacheStats S;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    S = Stats;
  }
  std::lock_guard<std::mutex> RLock(RemoteMu);
  S.RemoteWaitMs = RemoteWaitUs / 1000;
  return S;
}

size_t ProofCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
