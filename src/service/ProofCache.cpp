//===- ProofCache.cpp - Content-addressed proof result cache ---------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/ProofCache.h"

#include "support/Hash.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

namespace {

/// Parses one store line ("<16-hex key> V <time_ms>"). Strict: the
/// time field must be a full, garbage-free number. std::from_chars is
/// locale-independent by specification — std::stod honors LC_NUMERIC,
/// so under e.g. de_DE a store written elsewhere would silently parse
/// "12.5" as 12 and keep the ".5" as accepted trailing junk.
bool parseStoreLine(std::string_view S, uint64_t &Key, double &TimeMs) {
  if (S.size() < 19 || S.substr(16, 3) != " V ")
    return false;
  if (!hashFromHex(S.substr(0, 16), Key))
    return false;
  std::string_view Num = S.substr(19);
  double V = 0.0;
  auto [Ptr, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), V);
  if (Ec != std::errc() || Ptr != Num.data() + Num.size())
    return false;
  TimeMs = V;
  return true;
}

/// Fixed three-decimal formatting without touching the locale
/// machinery (snprintf "%f" writes the LC_NUMERIC decimal separator,
/// which parseStoreLine would then rightly reject).
std::string formatMs(double Ms) {
  if (!(Ms >= 0.0)) // Also catches NaN.
    Ms = 0.0;
  long long Milli = std::llround(Ms * 1000.0);
  std::string Frac = std::to_string(Milli % 1000);
  return std::to_string(Milli / 1000) + "." +
         std::string(3 - Frac.size(), '0') + Frac;
}

} // namespace

ProofCache::ProofCache(std::string DirIn) : Dir(std::move(DirIn)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    OpenError = "cannot create cache directory '" + Dir +
                "': " + EC.message();
    Dir.clear();
    return;
  }
  std::ifstream In(storePath());
  if (!In)
    return; // Fresh store.
  std::string Line;
  while (std::getline(In, Line)) {
    // Unparseable lines are skipped, not fatal (a torn line from an
    // old pre-atomic store must not poison the whole cache).
    uint64_t Key = 0;
    double Ms = 0.0;
    if (!parseStoreLine(trim(Line), Key, Ms))
      continue;
    // Last write wins on duplicate keys (a pre-atomic store could
    // carry appended duplicates); flush() compacts to one line per
    // key, so the dedupe also self-heals the store.
    Entries[Key] = Entry{Ms, false};
  }
}

ProofCache::~ProofCache() { flush(); }

std::string ProofCache::storePath() const {
  return (fs::path(Dir) / "proofs-v1.txt").string();
}

void ProofCache::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Dir.empty())
    return;
  bool AnyDirty = false;
  for (const auto &[Key, E] : Entries)
    if (E.Dirty) {
      AnyDirty = true;
      break;
    }
  if (!AnyDirty)
    return;

  // Serialize concurrent flushers with an advisory lock on a sidecar
  // file. The store itself cannot carry the lock: the rename below
  // replaces its inode, and a lock on the old inode would no longer
  // exclude the next writer.
  const std::string Lockfile = storePath() + ".lock";
  int LockFd = ::open(Lockfile.c_str(), O_CREAT | O_RDWR, 0644);
  if (LockFd >= 0)
    ::flock(LockFd, LOCK_EX);
  auto Unlock = [&] {
    if (LockFd >= 0) {
      ::flock(LockFd, LOCK_UN);
      ::close(LockFd);
    }
  };

  // Merge entries a sibling process flushed after our load: the
  // replace-by-rename below writes the full union, so anything on
  // disk we have not seen yet must be folded in first or it would be
  // clobbered. Our own entries win ties (same key -> same verdict;
  // only the recorded solve time could differ).
  {
    std::ifstream In(storePath());
    std::string Line;
    while (In && std::getline(In, Line)) {
      uint64_t Key = 0;
      double Ms = 0.0;
      if (parseStoreLine(trim(Line), Key, Ms))
        Entries.try_emplace(Key, Entry{Ms, false});
    }
  }

  // Write the union to a temp file in the same directory, then
  // atomically swing the name over it with rename(2): a reader (or a
  // crash) can only ever observe the complete old store or the
  // complete new one, never a torn append. The temp name carries pid
  // plus a process-wide counter — two caches in one process must not
  // collide on a pid-only name.
  static std::atomic<unsigned> TmpCounter{0};
  const std::string Tmp = storePath() + ".tmp." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Store(Tmp, std::ios::trunc);
    if (!Store) {
      OpenError = "cannot write cache store '" + Tmp + "'";
      Unlock();
      return;
    }
    std::vector<std::pair<uint64_t, double>> Sorted;
    Sorted.reserve(Entries.size());
    for (const auto &[Key, E] : Entries)
      Sorted.emplace_back(Key, E.TimeMs);
    std::sort(Sorted.begin(), Sorted.end());
    for (const auto &[Key, Ms] : Sorted)
      Store << hashToHex(Key) << " V " << formatMs(Ms) << '\n';
    Store.flush();
    if (!Store) {
      OpenError = "cannot write cache store '" + Tmp + "'";
      std::error_code EC;
      fs::remove(Tmp, EC);
      Unlock();
      return;
    }
  }
  std::error_code EC;
  fs::rename(Tmp, storePath(), EC);
  if (EC) {
    OpenError = "cannot replace cache store '" + storePath() +
                "': " + EC.message();
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    Unlock();
    return;
  }
  for (auto &[Key, E] : Entries)
    E.Dirty = false;
  Unlock();
}

std::optional<smt::CheckResult> ProofCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  smt::CheckResult R;
  R.Status = smt::CheckStatus::Valid;
  R.TimeMs = It->second.TimeMs;
  R.Detail = "(cached)";
  return R;
}

void ProofCache::store(uint64_t Key, const smt::CheckResult &Result) {
  if (Result.Status != smt::CheckStatus::Valid)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Entries.try_emplace(Key);
  if (!Inserted)
    return;
  It->second.TimeMs = Result.TimeMs;
  It->second.Dirty = true;
  ++Stats.Stores;
}

CacheStats ProofCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t ProofCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
