//===- ProofCache.cpp - Content-addressed proof result cache ---------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/ProofCache.h"

#include "support/Hash.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

ProofCache::ProofCache(std::string DirIn) : Dir(std::move(DirIn)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    OpenError = "cannot create cache directory '" + Dir +
                "': " + EC.message();
    Dir.clear();
    return;
  }
  std::ifstream In(storePath());
  if (!In)
    return; // Fresh store.
  std::string Line;
  while (std::getline(In, Line)) {
    std::string_view S = trim(Line);
    // "<16-hex key> V <time_ms>"; unparseable lines are skipped, not
    // fatal (a torn append must not poison the whole store).
    if (S.size() < 19 || S.substr(16, 3) != " V ")
      continue;
    uint64_t Key = 0;
    if (!hashFromHex(S.substr(0, 16), Key))
      continue;
    Entry E;
    try {
      E.TimeMs = std::stod(std::string(S.substr(19)));
    } catch (...) {
      continue;
    }
    Entries.emplace(Key, E);
  }
}

ProofCache::~ProofCache() { flush(); }

std::string ProofCache::storePath() const {
  return (fs::path(Dir) / "proofs-v1.txt").string();
}

void ProofCache::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Dir.empty())
    return;
  std::ostringstream Out;
  unsigned Pending = 0;
  for (auto &[Key, E] : Entries) {
    if (!E.Dirty)
      continue;
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), " V %.3f\n", E.TimeMs);
    Out << hashToHex(Key) << Buf;
    E.Dirty = false;
    ++Pending;
  }
  if (!Pending)
    return;
  std::ofstream Store(storePath(), std::ios::app);
  if (!Store) {
    OpenError = "cannot append to cache store '" + storePath() + "'";
    return;
  }
  Store << Out.str();
}

std::optional<smt::CheckResult> ProofCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  smt::CheckResult R;
  R.Status = smt::CheckStatus::Valid;
  R.TimeMs = It->second.TimeMs;
  R.Detail = "(cached)";
  return R;
}

void ProofCache::store(uint64_t Key, const smt::CheckResult &Result) {
  if (Result.Status != smt::CheckStatus::Valid)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Entries.try_emplace(Key);
  if (!Inserted)
    return;
  It->second.TimeMs = Result.TimeMs;
  It->second.Dirty = true;
  ++Stats.Stores;
}

CacheStats ProofCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t ProofCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
