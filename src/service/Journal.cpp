//===- Journal.cpp - Crash-safe write-ahead record journal ------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/Journal.h"

#include "support/Hash.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::service;

namespace {

constexpr char RecordTag = 'R';
constexpr char CommitTag = 'C';
/// Sanity cap on one record; a "length" beyond it is framing garbage,
/// not a real record (store lines are well under a megabyte).
constexpr uint32_t MaxRecordBytes = 16u << 20;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

bool getU32(const std::string &Buf, size_t &Pos, uint32_t &V) {
  if (Buf.size() - Pos < 4)
    return false;
  V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos + I]))
         << (8 * I);
  Pos += 4;
  return true;
}

bool getU64(const std::string &Buf, size_t &Pos, uint64_t &V) {
  if (Buf.size() - Pos < 8)
    return false;
  V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos + I]))
         << (8 * I);
  Pos += 8;
  return true;
}

uint64_t payloadChecksum(const std::string &Payload) {
  return Fnv1a().bytes(Payload.data(), Payload.size()).digest();
}

/// Reads the whole file behind \p Fd into \p Out (from offset 0).
bool readAll(int Fd, std::string &Out) {
  Out.clear();
  off_t Off = 0;
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::pread(Fd, Buf, sizeof(Buf), Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return true;
    Out.append(Buf, static_cast<size_t>(N));
    Off += N;
  }
}

/// Scans journal bytes: committed records (oldest first) into
/// \p Records; returns the byte offset just past the last valid
/// commit marker (everything after it is a torn tail).
size_t scanCommitted(const std::string &Buf,
                     std::vector<std::string> &Records) {
  size_t Pos = 0;
  size_t CommittedEnd = 0;
  std::vector<std::string> Pending;
  Fnv1a Chain;
  uint32_t PendingCount = 0;
  while (Pos < Buf.size()) {
    char Tag = Buf[Pos];
    size_t FramePos = Pos + 1;
    if (Tag == RecordTag) {
      uint32_t Len = 0;
      uint64_t Sum = 0;
      if (!getU32(Buf, FramePos, Len) || !getU64(Buf, FramePos, Sum))
        break; // Torn header.
      if (Len > MaxRecordBytes || Buf.size() - FramePos < Len)
        break; // Garbage length or torn payload.
      std::string Payload = Buf.substr(FramePos, Len);
      if (payloadChecksum(Payload) != Sum)
        break; // Corrupt payload.
      Chain.u64(Sum);
      ++PendingCount;
      Pending.push_back(std::move(Payload));
      Pos = FramePos + Len;
    } else if (Tag == CommitTag) {
      uint32_t Count = 0;
      uint64_t Sum = 0;
      if (!getU32(Buf, FramePos, Count) || !getU64(Buf, FramePos, Sum))
        break; // Torn marker.
      if (Count != PendingCount || Chain.digest() != Sum)
        break; // Marker does not bind to the records before it.
      for (std::string &R : Pending)
        Records.push_back(std::move(R));
      Pending.clear();
      Chain = Fnv1a();
      PendingCount = 0;
      Pos = FramePos;
      CommittedEnd = Pos;
    } else {
      break; // Unknown frame tag: corruption starts here.
    }
  }
  return CommittedEnd;
}

} // namespace

void Journal::open(std::string PathIn) {
  if (Fd >= 0)
    return;
  Path = std::move(PathIn);
  Fd = ::open(Path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
  if (Fd < 0) {
    Error = "cannot open journal '" + Path + "': " + std::strerror(errno);
    return;
  }
  // Replay under the exclusive lock: a torn tail is truncated away,
  // and truncation must not race a sibling's append.
  lock();
  std::string Buf;
  if (!readAll(Fd, Buf)) {
    Error = "cannot read journal '" + Path + "': " + std::strerror(errno);
    unlock();
    ::close(Fd);
    Fd = -1;
    return;
  }
  size_t CommittedEnd = scanCommitted(Buf, Recovered);
  if (CommittedEnd < Buf.size()) {
    TornBytes = Buf.size() - CommittedEnd;
    if (::ftruncate(Fd, static_cast<off_t>(CommittedEnd)) != 0)
      Error = "cannot truncate torn journal tail of '" + Path +
              "': " + std::strerror(errno);
  }
  unlock();
}

Journal::~Journal() {
  if (Fd >= 0)
    ::close(Fd);
}

bool Journal::commit(const std::vector<std::string> &Records) {
  if (Fd < 0)
    return Path.empty(); // Disabled journal: vacuous success.
  if (Records.empty())
    return true;
  std::string Frame;
  Fnv1a Chain;
  for (const std::string &R : Records) {
    uint64_t Sum = payloadChecksum(R);
    Chain.u64(Sum);
    Frame.push_back(RecordTag);
    putU32(Frame, static_cast<uint32_t>(R.size()));
    putU64(Frame, Sum);
    Frame += R;
  }
  Frame.push_back(CommitTag);
  putU32(Frame, static_cast<uint32_t>(Records.size()));
  putU64(Frame, Chain.digest());

  // One write(2) for the whole transaction under the file lock:
  // sibling transactions never interleave, and O_APPEND makes the
  // offset race-free even across processes.
  lock();
  bool Ok = true;
  size_t Done = 0;
  while (Done < Frame.size()) {
    ssize_t N = ::write(Fd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = "cannot append to journal '" + Path +
              "': " + std::strerror(errno);
      Ok = false;
      break;
    }
    Done += static_cast<size_t>(N);
  }
  if (Ok && !noFsync() && ::fdatasync(Fd) != 0 && errno != EINVAL &&
      errno != ENOSYS) {
    Error = "cannot sync journal '" + Path + "': " + std::strerror(errno);
    Ok = false;
  }
  unlock();
  return Ok;
}

bool Journal::commit(const std::string &Record) {
  return commit(std::vector<std::string>{Record});
}

std::vector<std::string> Journal::readCommitted() const {
  std::vector<std::string> Records;
  if (Fd < 0)
    return Records;
  std::string Buf;
  if (!readAll(Fd, Buf))
    return Records;
  scanCommitted(Buf, Records);
  return Records;
}

bool Journal::reset() {
  if (Fd < 0)
    return Path.empty();
  if (::ftruncate(Fd, 0) != 0) {
    Error = "cannot reset journal '" + Path + "': " + std::strerror(errno);
    return false;
  }
  return true;
}

uint64_t Journal::sizeBytes() const {
  if (Fd < 0)
    return 0;
  struct stat St;
  if (::fstat(Fd, &St) != 0)
    return 0;
  return static_cast<uint64_t>(St.st_size);
}

namespace {
/// -1 = not yet decided (consult the environment on first query).
std::atomic<int> NoFsyncFlag{-1};
} // namespace

void Journal::setNoFsync(bool V) {
  NoFsyncFlag.store(V ? 1 : 0, std::memory_order_relaxed);
}

bool Journal::noFsync() {
  int V = NoFsyncFlag.load(std::memory_order_relaxed);
  if (V < 0) {
    const char *Env = std::getenv("VCDRYAD_NO_FSYNC");
    V = (Env && *Env && std::string_view(Env) != "0") ? 1 : 0;
    NoFsyncFlag.store(V, std::memory_order_relaxed);
  }
  return V == 1;
}

void Journal::syncPath(const std::string &P) {
  if (noFsync() || P.empty())
    return;
  int Fd = ::open(P.c_str(), O_RDONLY);
  if (Fd < 0)
    return;
  ::fsync(Fd); // Best-effort (see header).
  ::close(Fd);
}

void Journal::syncDirOf(const std::string &P) {
  if (noFsync() || P.empty())
    return;
  // The containing directory: everything before the last separator,
  // "." for bare names (relative store paths resolve against cwd),
  // "/" for root-anchored names.
  size_t Slash = P.find_last_of('/');
  std::string Dir;
  if (Slash == std::string::npos)
    Dir = ".";
  else if (Slash == 0)
    Dir = "/";
  else
    Dir = P.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

void Journal::lock() {
  if (Fd >= 0)
    ::flock(Fd, LOCK_EX);
}

void Journal::unlock() {
  if (Fd >= 0)
    ::flock(Fd, LOCK_UN);
}
