//===- Manifest.cpp - Persisted incremental-verification manifest -----------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/Manifest.h"

#include "support/Hash.h"
#include "support/StringUtil.h"

#include <atomic>
#include <charconv>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

namespace {

/// Splits one whitespace-separated field off the front of \p S.
std::string_view nextField(std::string_view &S) {
  while (!S.empty() && S.front() == ' ')
    S.remove_prefix(1);
  size_t End = S.find(' ');
  std::string_view F = S.substr(0, End);
  S.remove_prefix(End == std::string_view::npos ? S.size() : End);
  return F;
}

bool parseUnsignedField(std::string_view F, uint64_t &Out) {
  if (F.empty())
    return false;
  auto [Ptr, Ec] = std::from_chars(F.data(), F.data() + F.size(), Out);
  return Ec == std::errc() && Ptr == F.data() + F.size();
}

/// Parses one manifest line:
///   "<16-hex key> V <name> <manual> <ghost> <n> <vc-hash>*"
/// Strict: field counts and hash widths must match exactly; torn or
/// foreign lines are skipped by the caller, never fatal.
bool parseManifestLine(std::string_view S, uint64_t &Key,
                       ManifestEntry &E) {
  if (!hashFromHex(nextField(S), Key))
    return false;
  if (nextField(S) != "V")
    return false;
  std::string_view Name = nextField(S);
  if (Name.empty())
    return false;
  uint64_t Manual = 0, Ghost = 0, N = 0;
  if (!parseUnsignedField(nextField(S), Manual) ||
      !parseUnsignedField(nextField(S), Ghost) ||
      !parseUnsignedField(nextField(S), N))
    return false;
  E.Name = std::string(Name);
  E.Manual = static_cast<unsigned>(Manual);
  E.Ghost = static_cast<unsigned>(Ghost);
  E.VcKeys.clear();
  E.VcKeys.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t H = 0;
    if (!hashFromHex(nextField(S), H))
      return false;
    E.VcKeys.push_back(H);
  }
  while (!S.empty() && S.front() == ' ')
    S.remove_prefix(1);
  return S.empty(); // Trailing garbage rejects the line.
}

void formatManifestLine(std::string &Out, uint64_t Key,
                        const ManifestEntry &E) {
  Out += hashToHex(Key);
  Out += " V ";
  Out += E.Name;
  Out += ' ';
  Out += std::to_string(E.Manual);
  Out += ' ';
  Out += std::to_string(E.Ghost);
  Out += ' ';
  Out += std::to_string(E.VcKeys.size());
  for (uint64_t H : E.VcKeys) {
    Out += ' ';
    Out += hashToHex(H);
  }
  Out += '\n';
}

} // namespace

VcManifest::VcManifest(std::string DirIn) : Dir(std::move(DirIn)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    OpenError = "cannot create manifest directory '" + Dir +
                "': " + EC.message();
    Dir.clear();
    return;
  }
  {
    std::ifstream In(storePath());
    std::string Line;
    while (In && std::getline(In, Line)) {
      uint64_t Key = 0;
      ManifestEntry E;
      if (!parseManifestLine(trim(Line), Key, E))
        continue; // Torn/foreign lines are skipped, not fatal.
      // Last write wins: a later duplicate replaces an earlier one.
      Entries[Key] = Entry{std::move(E), false};
    }
  }
  // Replay the write-ahead journal on top of the snapshot: records a
  // crashed (or still-running) sibling committed but never compacted.
  // Journal records are newer than any snapshot line, so they win
  // duplicates; they stay dirty until the next compaction.
  Wal.open(storePath() + ".wal");
  if (!Wal.ok() && OpenError.empty())
    OpenError = Wal.error();
  for (const std::string &Rec : Wal.recovered()) {
    uint64_t Key = 0;
    ManifestEntry E;
    if (!parseManifestLine(trim(Rec), Key, E))
      continue;
    Entries.insert_or_assign(Key, Entry{std::move(E), true});
    ++JournalRecovered;
  }
}

VcManifest::~VcManifest() { flush(); }

std::string VcManifest::storePath() const {
  if (Dir.empty())
    return {};
  return (fs::path(Dir) / "manifest-v1.txt").string();
}

void VcManifest::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Dir.empty())
    return;
  bool AnyDirty = false;
  for (const auto &[Key, E] : Entries)
    if (E.Dirty) {
      AnyDirty = true;
      break;
    }
  // Compaction trigger: something to fold into the snapshot, or a
  // journal worth truncating (dirty records are already journaled).
  if (!AnyDirty && Wal.sizeBytes() == 0)
    return;

  // Same discipline as ProofCache::flush: serialize flushers on a
  // sidecar advisory lock (the rename below replaces the store's
  // inode, so the store itself cannot carry the lock), fold in
  // entries a sibling process persisted since our load — snapshot and
  // journal — write the union to a temp file and atomically rename it
  // over the store, then truncate the journal. The journal lock nests
  // inside the sidecar lock (record() takes only the journal lock, so
  // the ordering is acyclic).
  const std::string Lockfile = storePath() + ".lock";
  int LockFd = ::open(Lockfile.c_str(), O_CREAT | O_RDWR, 0644);
  if (LockFd >= 0)
    ::flock(LockFd, LOCK_EX);
  Wal.lock();
  auto Unlock = [&] {
    Wal.unlock();
    if (LockFd >= 0) {
      ::flock(LockFd, LOCK_UN);
      ::close(LockFd);
    }
  };

  {
    std::ifstream In(storePath());
    std::string Line;
    while (In && std::getline(In, Line)) {
      uint64_t Key = 0;
      ManifestEntry E;
      // Our own entries win ties: a key we recorded this session is
      // at least as fresh as anything a sibling persisted.
      if (parseManifestLine(trim(Line), Key, E))
        Entries.try_emplace(Key, Entry{std::move(E), false});
    }
  }
  // And records siblings committed to the journal since our load.
  for (const std::string &Rec : Wal.readCommitted()) {
    uint64_t Key = 0;
    ManifestEntry E;
    if (parseManifestLine(trim(Rec), Key, E))
      Entries.try_emplace(Key, Entry{std::move(E), false});
  }

  static std::atomic<unsigned> TmpCounter{0};
  const std::string Tmp = storePath() + ".tmp." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Store(Tmp, std::ios::trunc);
    if (!Store) {
      OpenError = "cannot write manifest '" + Tmp + "'";
      Unlock();
      return;
    }
    std::string Buf;
    for (const auto &[Key, E] : Entries) // std::map: key-sorted.
      formatManifestLine(Buf, Key, E.E);
    Store << Buf;
    Store.flush();
    if (!Store) {
      OpenError = "cannot write manifest '" + Tmp + "'";
      std::error_code EC;
      fs::remove(Tmp, EC);
      Unlock();
      return;
    }
  }
  // Same durability order as ProofCache::flush: data sync before the
  // rename, directory sync after — the rename is only durable once
  // its directory entry is, and the journal truncation below must
  // never outrun it.
  Journal::syncPath(Tmp);
  std::error_code EC;
  fs::rename(Tmp, storePath(), EC);
  if (EC) {
    OpenError = "cannot replace manifest '" + storePath() +
                "': " + EC.message();
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    Unlock();
    return;
  }
  Journal::syncDirOf(storePath());
  // The snapshot now holds everything the journal did; truncate it.
  // (On rename failure we keep the journal — records stay durable
  // even when the snapshot cannot be replaced.)
  Wal.reset();
  for (auto &[Key, E] : Entries)
    E.Dirty = false;
  Unlock();
}

std::optional<ManifestEntry> VcManifest::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  return It->second.E;
}

std::optional<ManifestEntry> VcManifest::peek(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return std::nullopt;
  return It->second.E;
}

void VcManifest::record(uint64_t Key, ManifestEntry E) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &Slot = Entries[Key];
  Slot.E = std::move(E);
  Slot.Dirty = true;
  ++Stats.Records;
  // Journal the record now: from this moment a kill -9 cannot lose
  // it, whether or not a compaction ever runs. (Journal IO errors
  // degrade to snapshot-only durability; flush() still persists it.)
  std::string Line;
  formatManifestLine(Line, Key, Slot.E);
  if (!Line.empty() && Line.back() == '\n')
    Line.pop_back(); // Journal records are unterminated lines.
  Wal.commit(Line);
}

uint64_t VcManifest::journalBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Wal.sizeBytes();
}

ManifestStats VcManifest::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t VcManifest::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
