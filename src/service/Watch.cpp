//===- Watch.cpp - Watch-mode primitives -----------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/Watch.h"

#include "cfront/Lexer.h"
#include "support/Diagnostics.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <filesystem>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

std::string service::canonicalPath(const std::string &Path) {
  std::error_code EC;
  fs::path C = fs::canonical(Path, EC);
  if (!EC)
    return C.string();
  // Nonexistent (or unreadable) paths still normalize stably so a
  // later lookup under the same spelling finds the same key.
  fs::path A = fs::absolute(Path, EC);
  if (EC)
    return Path;
  return A.lexically_normal().string();
}

std::vector<std::string> service::includeClosure(const std::string &CFile) {
  std::string Canon = canonicalPath(CFile);
  std::vector<std::string> Out;
  Out.push_back(Canon);
  std::optional<std::string> Text = readFile(Canon);
  if (!Text)
    return Out; // Just the file: nothing to splice, nothing to watch.
  size_t Slash = Canon.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "" : Canon.substr(0, Slash);
  DiagnosticEngine Diag; // Missing includes: verifier's problem, not ours.
  std::set<std::string> Includes;
  (void)cfront::preprocess(*Text, Dir, Diag, &Includes);
  std::set<std::string> Seen{Canon};
  for (const std::string &Inc : Includes) {
    std::string C = canonicalPath(Inc);
    if (Seen.insert(C).second)
      Out.push_back(C);
  }
  std::sort(Out.begin() + 1, Out.end()); // File first, includes sorted.
  return Out;
}

//===----------------------------------------------------------------------===//
// Debouncer
//===----------------------------------------------------------------------===//

int Debouncer::nextDeadlineMs(uint64_t NowMs) const {
  if (LastEvent.empty())
    return -1;
  uint64_t Oldest = UINT64_MAX;
  for (const auto &[Path, At] : LastEvent)
    Oldest = std::min(Oldest, At);
  uint64_t Ripe = Oldest + QuietMs;
  return Ripe <= NowMs ? 0 : static_cast<int>(Ripe - NowMs);
}

std::vector<std::string> Debouncer::takeRipe(uint64_t NowMs) {
  std::vector<std::string> Out;
  for (auto It = LastEvent.begin(); It != LastEvent.end();) {
    if (NowMs >= It->second + QuietMs) {
      Out.push_back(It->first);
      It = LastEvent.erase(It);
    } else {
      ++It;
    }
  }
  return Out; // Sorted: map order.
}

//===----------------------------------------------------------------------===//
// EventRing
//===----------------------------------------------------------------------===//

uint64_t EventRing::append(WatchEvent E) {
  std::lock_guard<std::mutex> Lock(Mu);
  E.Seq = NextSeq++;
  Ring.push_back(std::move(E));
  if (Ring.size() > Cap)
    Ring.erase(Ring.begin(), Ring.begin() + (Ring.size() - Cap));
  return Ring.back().Seq;
}

std::vector<WatchEvent> EventRing::since(uint64_t Cursor) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<WatchEvent> Out;
  for (const WatchEvent &E : Ring)
    if (E.Seq > Cursor)
      Out.push_back(E);
  return Out;
}

uint64_t EventRing::lastSeq() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NextSeq - 1;
}

size_t EventRing::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ring.size();
}

//===----------------------------------------------------------------------===//
// WatchRegistry
//===----------------------------------------------------------------------===//

WatchRegistry::Delta WatchRegistry::add(const std::string &CFile) {
  Delta D;
  D.File = canonicalPath(CFile);
  std::vector<std::string> Closure = includeClosure(D.File);
  std::set<std::string> New(Closure.begin(), Closure.end());
  std::set<std::string> &Old = ClosureOf[D.File]; // Empty on first add.
  for (const std::string &P : New)
    if (!Old.count(P)) {
      D.Added.push_back(P);
      OwnersOf[P].insert(D.File);
    }
  for (const std::string &P : Old)
    if (!New.count(P)) {
      D.Removed.push_back(P);
      auto It = OwnersOf.find(P);
      if (It != OwnersOf.end()) {
        It->second.erase(D.File);
        if (It->second.empty())
          OwnersOf.erase(It);
      }
    }
  Old = std::move(New);
  return D;
}

WatchRegistry::Delta WatchRegistry::remove(const std::string &CFile) {
  Delta D;
  std::string Canon = canonicalPath(CFile);
  auto It = ClosureOf.find(Canon);
  if (It == ClosureOf.end())
    return D; // D.File empty: not registered.
  D.File = Canon;
  for (const std::string &P : It->second) {
    D.Removed.push_back(P);
    auto OIt = OwnersOf.find(P);
    if (OIt != OwnersOf.end()) {
      OIt->second.erase(Canon);
      if (OIt->second.empty())
        OwnersOf.erase(OIt);
    }
  }
  ClosureOf.erase(It);
  return D;
}

std::vector<std::string>
WatchRegistry::owners(const std::string &Path) const {
  auto It = OwnersOf.find(Path);
  if (It == OwnersOf.end()) {
    // Event paths arrive canonical (the daemon watches canonical
    // directories), but a client querying by hand may not bother.
    It = OwnersOf.find(canonicalPath(Path));
    if (It == OwnersOf.end())
      return {};
  }
  return std::vector<std::string>(It->second.begin(), It->second.end());
}

std::vector<std::string> WatchRegistry::files() const {
  std::vector<std::string> Out;
  Out.reserve(ClosureOf.size());
  for (const auto &[File, Closure] : ClosureOf)
    Out.push_back(File);
  return Out;
}
