//===- Journal.h - Crash-safe write-ahead record journal --------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A write-ahead journal shared by the proof cache and the VC manifest:
/// an append-only log of text records with length+checksum framing and
/// explicit commit markers, so a result persisted through the journal
/// survives `kill -9` at any instant. The stores use it as the
/// durability layer between snapshots: every accepted entry is
/// journaled (append + commit + fsync) the moment it is recorded, and
/// the existing `proofs-v1.txt` / `manifest-v1.txt` snapshot formats
/// become periodic *compactions* of journal state — full rewrites that
/// then truncate the journal. Replay-on-open applies whatever the last
/// crash left committed on top of the snapshot.
///
/// On-disk framing (all integers little-endian, fixed width):
///   record frame:  'R' <u32 payload-len> <u64 fnv1a(payload)> <payload>
///   commit frame:  'C' <u32 record-count> <u64 chained-checksum>
/// The chained checksum folds the record checksums of the transaction
/// in order, binding the marker to exactly the records before it: a
/// commit marker spliced onto foreign bytes never validates.
///
/// Replay discipline: records are buffered until their commit marker
/// proves the transaction complete; the first malformed, torn, or
/// checksum-failing frame ends replay and the file is truncated back
/// to the last committed byte — a torn tail can delay results (they
/// re-solve), never corrupt them.
///
/// Concurrency: the journal file is only ever appended to or
/// truncated in place — its inode is stable, so an exclusive flock on
/// the file itself serializes writers across processes. commit()
/// writes each transaction with a single write(2) under that lock.
/// Compaction (see ProofCache::flush) holds the same lock across
/// read-journal -> write-snapshot -> truncate, so a record committed
/// by a sibling lands either in the snapshot or stays in the journal,
/// never neither.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_JOURNAL_H
#define VCDRYAD_SERVICE_JOURNAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace vcdryad {
namespace service {

class Journal {
public:
  /// Disabled journal: every operation is a no-op that reports
  /// success, so in-memory-only stores need no special casing.
  Journal() = default;

  /// Opens (creating if needed) the journal at \p Path and replays it:
  /// committed records become recovered(); a torn tail is truncated
  /// away. IO failures leave ok() false with error() set — callers
  /// degrade to snapshot-only durability.
  explicit Journal(std::string Path) { open(std::move(Path)); }

  /// Same as the opening constructor, for deferred member
  /// initialization. No-op if already open.
  void open(std::string Path);

  ~Journal();

  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// The journal opened (or was default-constructed disabled).
  bool ok() const { return Path.empty() || Fd >= 0; }
  /// An open journal backed by a real file (not the disabled stub).
  bool active() const { return Fd >= 0; }

  const std::string &path() const { return Path; }
  const std::string &error() const { return Error; }

  /// Committed records recovered by replay-on-open, oldest first.
  const std::vector<std::string> &recovered() const { return Recovered; }

  /// Bytes of torn (uncommitted or corrupt) tail discarded at open.
  uint64_t tornBytesDropped() const { return TornBytes; }

  /// Durably appends one transaction: every record framed, a commit
  /// marker bound to them, one write(2) under the file lock, then
  /// fdatasync. False on IO error (error() explains); the store keeps
  /// the entry in memory and the next snapshot compaction persists it.
  bool commit(const std::vector<std::string> &Records);

  /// Convenience: single-record transaction.
  bool commit(const std::string &Record);

  /// Re-reads the journal from disk and returns every committed
  /// record, oldest first (what compaction folds into the snapshot —
  /// siblings may have appended since open). Caller must hold lock()
  /// to read a frozen state.
  std::vector<std::string> readCommitted() const;

  /// Truncates the journal to empty (after a successful compaction).
  bool reset();

  /// Current journal size in bytes (0 when disabled or unreadable).
  uint64_t sizeBytes() const;

  /// Exclusive advisory lock on the journal file, shared with sibling
  /// processes; no-ops when disabled. Used by commit() internally and
  /// by compaction externally (lock -> readCommitted -> snapshot ->
  /// reset -> unlock).
  void lock();
  void unlock();

  /// Process-wide throughput switch: skip the per-transaction
  /// fdatasync. Framing still discards torn tails, so crash
  /// *consistency* is unaffected; crash *durability* degrades to the
  /// OS writeback interval (a kill -9 can lose the last few commits,
  /// which merely re-solve). Meant for cache servers and CI runners on
  /// slow disks. Defaults to off unless VCDRYAD_NO_FSYNC is set to a
  /// non-"0" value in the environment.
  static void setNoFsync(bool V);
  static bool noFsync();

  /// Durability helpers for the stores' replace-by-rename compaction,
  /// honoring the same noFsync() switch. syncPath fsyncs the file at
  /// \p Path (the freshly written temp snapshot, before rename);
  /// syncDirOf fsyncs the *directory containing* \p Path — rename(2)
  /// alone only orders the data, the new directory entry itself is
  /// not durable until its directory is synced, so a crash right
  /// after compaction could otherwise resurrect the old snapshot
  /// *after* the journal was truncated, silently dropping proofs.
  /// Best-effort: failures are ignored (worst case is the pre-rename
  /// durability we always had).
  static void syncPath(const std::string &Path);
  static void syncDirOf(const std::string &Path);

private:
  std::string Path;
  std::string Error;
  int Fd = -1;
  uint64_t TornBytes = 0;
  std::vector<std::string> Recovered;
};

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_JOURNAL_H
