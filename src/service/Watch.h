//===- Watch.h - Watch-mode primitives --------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service-side building blocks of daemon watch mode, kept free
/// of any inotify/kqueue dependency so they unit-test as plain data
/// structures and port to any notification backend:
///
///   Debouncer     — coalesces rapid file events (editor save dances:
///                   tempfile + rename, multi-write saves) into one
///                   ripe notification per path per quiet window.
///   EventRing     — the bounded, monotonically-sequenced in-memory
///                   log of re-verify outcomes the daemon's `events`
///                   op serves; clients poll with a since-cursor.
///   WatchRegistry — watched .c files and their preprocessed
///                   #include closures, with the reverse map from any
///                   closure path (the thing inotify reports) back to
///                   the owning .c files that must re-verify.
///
/// All paths handled here are canonical (realpath): the registry
/// canonicalizes on registration, so client spellings (`./foo.c`,
/// symlinks) and kernel event paths resolve to the same entry — the
/// same normalization the resident plan cache keys by.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_WATCH_H
#define VCDRYAD_SERVICE_WATCH_H

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace vcdryad {
namespace service {

/// Canonical spelling of \p Path: symlinks resolved and dot segments
/// folded (realpath) when the file exists; absolute + lexically
/// normal otherwise, so nonexistent paths still normalize stably.
/// The resident plan cache and the watch registry both key by this,
/// which is what makes `./foo.c`, `foo.c` and a symlinked spelling
/// hit the same resident plan.
std::string canonicalPath(const std::string &Path);

/// One watched file's preprocessed #include closure: the file itself
/// plus every file its (transitive) `#include "..."` directives
/// splice, all canonical. Exactly the inputs whose bytes feed
/// preprocessedTextHash — i.e. the set of paths whose change can
/// invalidate the file's resident plan. Unreadable includes are
/// simply absent (the verifier will report them; the watcher cannot).
std::vector<std::string> includeClosure(const std::string &CFile);

//===----------------------------------------------------------------------===//
// Debouncer
//===----------------------------------------------------------------------===//

/// Coalesces bursts of events on the same path into a single ripe
/// notification once the path has been quiet for a full window.
/// Editors do not save atomically-once: vim writes a probe file,
/// renames the original away and writes anew; others write in chunks
/// or save-then-format. Each event on a pending path restarts its
/// window, so a burst collapses to one notification ~QuietMs after
/// the last write. Time is injected by the caller (monotonic ms), so
/// the policy is deterministic under test.
///
/// Not thread-safe: owned and driven by the daemon's event thread.
class Debouncer {
public:
  explicit Debouncer(unsigned QuietWindowMs = 100)
      : QuietMs(QuietWindowMs) {}

  /// Records an event on \p Path at \p NowMs (restarts its window).
  void note(const std::string &Path, uint64_t NowMs) {
    LastEvent[Path] = NowMs;
  }

  /// Milliseconds until the next pending path ripens: 0 when one is
  /// ripe already, -1 when nothing is pending (poll() conventions).
  int nextDeadlineMs(uint64_t NowMs) const;

  /// Removes and returns every path quiet for >= the window, sorted
  /// (deterministic dispatch order for coalesced multi-path bursts).
  std::vector<std::string> takeRipe(uint64_t NowMs);

  size_t pending() const { return LastEvent.size(); }
  unsigned quietWindowMs() const { return QuietMs; }

private:
  unsigned QuietMs;
  std::map<std::string, uint64_t> LastEvent; ///< Path -> last event ms.
};

//===----------------------------------------------------------------------===//
// EventRing
//===----------------------------------------------------------------------===//

/// One re-verify outcome, as served by the daemon's `events` op.
struct WatchEvent {
  uint64_t Seq = 0;    ///< Monotonic (from 1); assigned by append().
  std::string Path;    ///< The re-verified .c file (canonical).
  std::string Trigger; ///< The changed path that caused it.
  bool Verified = false;
  unsigned Functions = 0; ///< Functions in the re-verified file.
  unsigned Failed = 0;    ///< Functions that failed.
  /// Wall time of the re-verify run that produced this outcome. A
  /// coalesced burst re-verifies several files in one run; each of
  /// its events carries that run's wall time.
  double WallMs = 0.0;
};

/// Bounded in-memory log of watch outcomes with monotonic sequence
/// numbers. Appends evict the oldest entry beyond the capacity;
/// readers poll `since(Cursor)` and advance their cursor to the last
/// Seq they saw — a reader that falls more than the capacity behind
/// simply misses the evicted prefix (lastSeq() exposes the gap).
///
/// Thread-safe: the daemon's verify worker appends while the event
/// thread answers `events` requests.
class EventRing {
public:
  explicit EventRing(size_t Capacity = 256)
      : Cap(Capacity ? Capacity : 1) {}

  /// Stamps \p E with the next sequence number and appends it;
  /// returns the assigned Seq.
  uint64_t append(WatchEvent E);

  /// Events with Seq > \p Cursor, oldest first (bounded by what is
  /// still retained).
  std::vector<WatchEvent> since(uint64_t Cursor) const;

  uint64_t lastSeq() const;
  size_t size() const;
  size_t capacity() const { return Cap; }

private:
  size_t Cap;
  mutable std::mutex Mu;
  uint64_t NextSeq = 1;
  std::vector<WatchEvent> Ring; ///< Oldest first; bounded by Cap.
};

//===----------------------------------------------------------------------===//
// WatchRegistry
//===----------------------------------------------------------------------===//

/// Watched .c files and their include closures, with the reverse
/// path -> owners map the event loop consults on every kernel event.
///
/// Not thread-safe: owned and driven by the daemon's event thread.
class WatchRegistry {
public:
  /// Edge changes of one add(): which closure paths this file newly
  /// watches and which it dropped — the daemon mirrors exactly these
  /// deltas into per-directory inotify watches (refcounted per
  /// file/path edge, so adds and removes stay balanced).
  struct Delta {
    std::string File;                 ///< Canonical .c path.
    std::vector<std::string> Added;   ///< New (file, path) edges.
    std::vector<std::string> Removed; ///< Dropped (file, path) edges.
  };

  /// (Re-)registers \p CFile: canonicalizes, computes the current
  /// include closure, and replaces any previous registration —
  /// re-adding after a save picks up include-set changes. The closure
  /// always contains the file itself.
  Delta add(const std::string &CFile);

  /// Unregisters \p CFile (any spelling). Returns the dropped edges;
  /// Delta.File is empty when the file was not registered.
  Delta remove(const std::string &CFile);

  /// The .c files whose plans depend on \p Path (itself included),
  /// sorted. Empty when the path is not in any watched closure.
  std::vector<std::string> owners(const std::string &Path) const;

  bool contains(const std::string &CFile) const {
    return ClosureOf.count(canonicalPath(CFile)) != 0;
  }

  /// Watched .c files, sorted.
  std::vector<std::string> files() const;

  size_t fileCount() const { return ClosureOf.size(); }
  /// Distinct paths across all closures (.c files included).
  size_t pathCount() const { return OwnersOf.size(); }

private:
  std::map<std::string, std::set<std::string>> ClosureOf; ///< .c -> paths
  std::map<std::string, std::set<std::string>> OwnersOf;  ///< path -> .c
};

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_WATCH_H
