//===- Service.cpp - Corpus-scale verification service ---------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "cfront/Lexer.h"
#include "service/SolverPool.h"
#include "service/Watch.h"
#include "smt/Portfolio.h"
#include "smt/VcHash.h"
#include "support/Diagnostics.h"
#include "support/Hash.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "wire/RemoteCache.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::service;

namespace fs = std::filesystem;

uint64_t service::optionsFingerprint(const verifier::VerifyOptions &O) {
  Fnv1a H;
  H.u64(1); // Fingerprint format version.
  H.u64(O.Instr.Unfold ? 1 : 0);
  H.u64(O.Instr.Preservation ? 1 : 0);
  H.u64(static_cast<uint64_t>(O.Instr.Axioms));
  H.u64(O.Instr.MaxTuplesPerSite);
  H.u64(O.Translate.CheckMemorySafety ? 1 : 0);
  H.u64(O.TimeoutMs);
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Cooperative shutdown
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> ShutdownFlag{false};
/// Self-pipe write end a poll()-based event loop registered (or -1).
/// An atomic int, not a pipe class: requestShutdown() runs in signal
/// handlers and may only load + write(2).
std::atomic<int> ShutdownWakeFd{-1};
} // namespace

void service::requestShutdown() {
  ShutdownFlag.store(true, std::memory_order_relaxed);
  int Fd = ShutdownWakeFd.load(std::memory_order_relaxed);
  if (Fd >= 0) {
    // Wake the event loop out of poll(). Both write(2) and a full
    // pipe (EAGAIN) are fine: one byte in flight already wakes it.
    unsigned char B = 1;
    [[maybe_unused]] ssize_t N = ::write(Fd, &B, 1);
  }
}

bool service::shutdownRequested() {
  return ShutdownFlag.load(std::memory_order_relaxed);
}

void service::resetShutdown() {
  ShutdownFlag.store(false, std::memory_order_relaxed);
}

void service::setShutdownWakeFd(int Fd) {
  ShutdownWakeFd.store(Fd, std::memory_order_relaxed);
}

namespace {

/// Recursively collects the .c files under \p Root, sorted for
/// deterministic batch order.
std::vector<std::string> walkDirectory(const fs::path &Root) {
  std::vector<std::string> Out;
  for (const auto &Entry : fs::recursive_directory_iterator(Root))
    if (Entry.is_regular_file() && Entry.path().extension() == ".c")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

std::string
service::resolveCacheDir(const std::string &CliCache, bool Explicit,
                         const std::vector<std::string> &Operands) {
  if (CliCache.empty())
    return {}; // Cache disabled.

  // The anchor: the first operand when it is a directory, its parent
  // otherwise. Every invocation naming the same corpus resolves to
  // the same cache, regardless of the process working directory.
  fs::path Anchor = ".";
  if (!Operands.empty()) {
    fs::path P(Operands.front());
    std::error_code EC;
    if (fs::is_directory(P, EC))
      Anchor = P;
    else if (P.has_parent_path())
      Anchor = P.parent_path();
  }

  if (Explicit) {
    fs::path C(CliCache);
    if (C.is_absolute())
      return CliCache;
    return (Anchor / C).lexically_normal().string();
  }
  if (const char *Env = std::getenv("VCDRYAD_CACHE_DIR"); Env && *Env)
    return Env;
  return (Anchor / CliCache).lexically_normal().string();
}

std::vector<std::string>
service::collectBatchInputs(const std::vector<std::string> &Operands,
                            std::string &Error) {
  std::vector<std::string> Out;
  std::set<std::string> Seen;
  auto Add = [&](const std::string &S) {
    if (Seen.insert(S).second)
      Out.push_back(S);
  };
  for (const std::string &Op : Operands) {
    fs::path P(Op);
    if (fs::is_directory(P)) {
      for (const std::string &F : walkDirectory(P))
        Add(F);
    } else if (fs::is_regular_file(P)) {
      if (P.extension() == ".c") {
        Add(P.string());
        continue;
      }
      // Any other file is a manifest: one path per line, '#' comments,
      // entries resolved relative to the manifest's directory.
      std::optional<std::string> Text = readFile(P.string());
      if (!Text) {
        Error = "cannot read manifest '" + Op + "'";
        return {};
      }
      std::istringstream In(*Text);
      std::string Line;
      while (std::getline(In, Line)) {
        std::string_view S = trim(Line);
        if (S.empty() || S[0] == '#')
          continue;
        fs::path E{std::string(S)};
        if (E.is_relative())
          E = P.parent_path() / E;
        if (fs::is_directory(E)) {
          for (const std::string &F : walkDirectory(E))
            Add(F);
        } else if (fs::is_regular_file(E)) {
          Add(E.string());
        } else {
          Error = "manifest '" + Op + "': no such file or directory: " +
                  std::string(S);
          return {};
        }
      }
    } else {
      Error = "no such file or directory: " + Op;
      return {};
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

namespace {

/// Result slot for one obligation; written by exactly one pool task
/// per wave, read only after the pool drains (the pool's queue mutex
/// provides the happens-before edge).
struct VCSlot {
  bool Solved = false;
  smt::CheckResult R;
  /// Canonical cache key (full guard, full budget); computed during
  /// the fast pass so escalation stores without re-hashing.
  uint64_t Key = 0;
  /// Slice-alias key: the hash of the cone-of-influence-sliced form of
  /// the same obligation. 0 when the slice is not proper (nothing was
  /// sliced away) or the cache is off. Always sound to *look up* (the
  /// sliced guard is the weaker hypothesis).
  uint64_t AliasKey = 0;
  /// True when a fast-pass session proof of this VC establishes
  /// exactly the sliced obligation (the asserted prefix is contained
  /// in the slice), making it sound to *record* under AliasKey.
  bool AliasSound = false;
  /// Time spent on this obligation in the fast session pass.
  double FastMs = 0.0;
  bool Trivial = false;   ///< Settled without any solver call.
  bool Escalated = false; ///< Fast pass failed to settle it.
  bool FromCache = false;
  /// Total solver time the portfolio race consumed on this obligation
  /// (0 when escalation ran single-strategy).
  double PortfolioMs = 0.0;
  /// Tactic profile that settled a portfolio escalation.
  std::string Winner;
};

/// Scheduler-side state of one function's obligations.
struct FuncJob {
  size_t FileIdx = 0;
  const verifier::FunctionObligations *FO = nullptr;
  const vir::VC *VacuityProbe = nullptr;
  VCSlot Vacuity;
  std::vector<VCSlot> Slots; ///< One per VC, in VC order.
  /// First-failure cancellation (StopAtFirstFailure): pending VC tasks
  /// of this function complete as skipped once set.
  std::atomic<bool> Cancelled{false};
  std::atomic<unsigned> Hits{0};
  std::atomic<unsigned> Misses{0};
  /// Fraction of this function's non-trivial obligations already in
  /// the proof cache (cache-aware scheduling orders on this).
  double CachedFrac = 0.0;
};

/// Per-worker solver, reused across obligations. Keyed by the plan
/// whose background axioms it carries (nullptr for the common
/// axiom-free configuration, shared across all files).
struct WorkerState {
  std::unique_ptr<smt::SmtSolver> Solver;
  const void *Key = reinterpret_cast<const void *>(1); // != any plan/null
};

} // namespace

/// One resident parsed plan (ResidentPlans mode): reusable while the
/// hash of the file's preprocessed text matches.
struct VerificationService::ResidentPlan {
  uint64_t TextHash = 0;
  verifier::ProgramPlan Plan;
};

namespace {

/// Hash of the exact parser input: the file's preprocessed text
/// (includes spliced), with the preprocessor's error count folded in
/// so "include missing" and "include empty" cannot collide. Planning
/// is a deterministic function of this text and the (fixed) options,
/// so an equal hash proves an equal plan. 0 = unreadable, never reuse.
uint64_t preprocessedTextHash(const std::string &Path) {
  std::optional<std::string> Text = readFile(Path);
  if (!Text)
    return 0;
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "" : Path.substr(0, Slash);
  DiagnosticEngine Diag;
  std::string Expanded = cfront::preprocess(*Text, Dir, Diag);
  uint64_t H = Fnv1a().str(Expanded).u64(Diag.errorCount()).digest();
  return H ? H : 1;
}

} // namespace

VerificationService::VerificationService(ServiceOptions OptsIn)
    : Opts(std::move(OptsIn)) {
  // Crash isolation: one supervised worker pool for the service's
  // lifetime; its factory rides into every solver the verifier and
  // the scheduler create. The cap tracks the worst concurrent demand
  // (a session worker plus a portfolio race per job); beyond it, or
  // after flap-degradation, solvers fall back in-process with
  // identical verdicts.
  if (Opts.IsolateSolvers) {
    PoolOptions PO;
    PO.MemMb = Opts.SolverMemMb;
    PO.CpuS = Opts.SolverCpuS;
    unsigned Jobs =
        Opts.Jobs ? Opts.Jobs : std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
    unsigned Lanes = Opts.Verify.Portfolio;
    if (Lanes <= 1 && !Opts.Verify.PortfolioProfiles.empty())
      Lanes = static_cast<unsigned>(Opts.Verify.PortfolioProfiles.size());
    PO.MaxWorkers = Jobs * (1 + (Lanes >= 2 ? Lanes : 1));
    Pool = std::make_unique<SolverPool>(std::move(PO));
    Opts.Verify.MakeSolver = Pool->factory();
  }

  // The stores open once and stay resident: a long-lived service pays
  // snapshot load and journal replay at startup, not per request, and
  // run() reports per-run stat deltas against them.
  if (!Opts.CacheDir.empty())
    Cache = std::make_unique<ProofCache>(Opts.CacheDir);

  // The remote (L3) tier rides on the local cache: prefetched results
  // land in the local store, locally proven results write behind to
  // the server. No local cache, no remote tier.
  if (Cache && !Opts.RemoteAddress.empty()) {
    wire::RemoteClientOptions RC;
    RC.Address = Opts.RemoteAddress;
    if (Opts.RemoteTimeoutMs != 0)
      RC.TimeoutMs = Opts.RemoteTimeoutMs;
    Cache->attachRemote(std::make_unique<wire::RemoteCache>(std::move(RC)),
                        optionsFingerprint(Opts.Verify));
  }

  // Incremental re-verification: a persisted function-level manifest
  // beside the proof cache. Disabled without a cache directory, and in
  // the quantified-axiom ablation mode, where whole-program background
  // axioms influence every verdict but sit outside the fingerprint's
  // per-function dependency closure — skipping there would be unsound
  // against background-axiom edits.
  if (Opts.Incremental && Cache &&
      Opts.Verify.Instr.Axioms !=
          instr::InstrOptions::AxiomMode::Quantified)
    Manifest = std::make_unique<VcManifest>(Opts.CacheDir);
}

VerificationService::~VerificationService() = default;

void VerificationService::flushStores() {
  if (Cache)
    Cache->flush();
  if (Manifest)
    Manifest->flush();
}

size_t VerificationService::residentPlanCount() const {
  std::lock_guard<std::mutex> Lock(PlanMu);
  return PlanCache.size();
}

BatchReport VerificationService::run(const std::vector<std::string> &Paths) {
  Timer Wall;
  BatchReport Rep;

  unsigned Jobs = Opts.Jobs;
  if (Jobs == 0)
    Jobs = std::thread::hardware_concurrency();
  if (Jobs == 0)
    Jobs = 1;
  Rep.Jobs = Jobs;

  const uint64_t Fingerprint = optionsFingerprint(Opts.Verify);

  if (Cache) {
    Rep.CacheEnabled = true;
    Rep.CacheDir = Opts.CacheDir;
    if (Cache->remoteAttached()) {
      Rep.RemoteEnabled = true;
      Rep.RemoteCacheAddress = Cache->remoteAddress();
    }
  }
  if (Manifest) {
    Rep.IncrementalEnabled = true;
    Rep.ManifestPath = Manifest->storePath();
  }
  // Stats are reported as per-run deltas: the stores outlive run() in
  // a resident service, and a warm request must report the same
  // numbers a fresh process would.
  const CacheStats Cache0 = Cache ? Cache->stats() : CacheStats{};
  const ManifestStats Manifest0 =
      Manifest ? Manifest->stats() : ManifestStats{};

  // The manifest key folds the content fingerprint with everything
  // else that shapes verdicts: the pipeline options (same salt the
  // proof cache uses) and the vacuity toggle (it adds an obligation).
  smt::SolverOptions KeySolverOpts;
  KeySolverOpts.TimeoutMs = Opts.Verify.TimeoutMs;
  auto functionKey = [&](uint64_t Fp) {
    return smt::hashFunctionKey(Fp, Fingerprint, KeySolverOpts,
                                Opts.Verify.CheckVacuity);
  };

  verifier::VerifyOptions VOpts = Opts.Verify;
  if (Manifest)
    VOpts.SkipUnchanged = [&](const std::string &, uint64_t Fp) {
      return Manifest->lookup(functionKey(Fp)).has_value();
    };
  verifier::Verifier V(VOpts);

  const size_t NumFiles = Paths.size();
  std::vector<verifier::ProgramPlan> FreshPlans(NumFiles);
  std::vector<const verifier::ProgramPlan *> Plans(NumFiles, nullptr);
  std::vector<char> Reused(NumFiles, 0);
  std::vector<uint64_t> TextHashes(NumFiles, 0);

  // Resident-plan reuse: a plan is valid exactly as long as the
  // preprocessed text it was parsed from is unchanged (planning is
  // deterministic given that text), so header edits behind #include
  // invalidate correctly even though the .c file itself is untouched.
  // Keys are canonical paths: `./foo.c`, `foo.c` and a symlink to it
  // are one plan, not three.
  std::vector<std::string> PlanKeys(NumFiles);
  if (Opts.ResidentPlans) {
    for (size_t I = 0; I != NumFiles; ++I)
      PlanKeys[I] = canonicalPath(Paths[I]);
    std::lock_guard<std::mutex> Lock(PlanMu);
    for (size_t I = 0; I != NumFiles; ++I) {
      TextHashes[I] = preprocessedTextHash(Paths[I]);
      auto It = PlanCache.find(PlanKeys[I]);
      if (TextHashes[I] != 0 && It != PlanCache.end() &&
          It->second->TextHash == TextHashes[I]) {
        Plans[I] = &It->second->Plan;
        Reused[I] = 1;
      }
    }
  }

  std::vector<smt::SolverOptions> FileSolverOpts(NumFiles);

  ThreadPool Pool(Jobs, Opts.QueueCap);

  // Wave 1 — front ends, one task per file (minus reused plans):
  // parse, normalize, instrument, translate, generate VCs. Obligation
  // DAGs built here are immutable afterwards, so wave 2 shares them
  // freely.
  for (size_t I = 0; I != NumFiles; ++I) {
    if (Reused[I])
      continue;
    Pool.submit([&, I](unsigned) {
      if (shutdownRequested()) {
        FreshPlans[I].Error = "cancelled: shutdown requested";
        return;
      }
      FreshPlans[I] = V.planFile(Paths[I]);
    });
  }
  Pool.wait();

  for (size_t I = 0; I != NumFiles; ++I) {
    if (Reused[I])
      continue;
    // Cache the fresh plan for the next run — except plans cut short
    // by a shutdown request, whose failure is not a property of the
    // text and must not be replayed.
    if (Opts.ResidentPlans && TextHashes[I] != 0 &&
        !(!FreshPlans[I].Ok && shutdownRequested())) {
      std::lock_guard<std::mutex> Lock(PlanMu);
      auto It = PlanCache.find(PlanKeys[I]);
      if (It != PlanCache.end() && It->second->TextHash == TextHashes[I]) {
        // A duplicate spelling earlier in this batch already cached
        // this plan; point at it instead of destroying it out from
        // under the earlier index's Plans pointer.
        Plans[I] = &It->second->Plan;
      } else {
        auto P = std::make_unique<ResidentPlan>();
        P->TextHash = TextHashes[I];
        P->Plan = std::move(FreshPlans[I]);
        Plans[I] = &P->Plan;
        PlanCache.insert_or_assign(PlanKeys[I], std::move(P));
      }
    } else {
      Plans[I] = &FreshPlans[I];
    }
  }

  for (size_t I = 0; I != NumFiles; ++I)
    if (Plans[I]->Ok)
      FileSolverOpts[I] = V.solverOptions(*Plans[I]);

  // The per-run skip decision, aligned with each plan's function list.
  // Fresh plans decided at plan time (the SkipUnchanged hook, which
  // already counted one manifest lookup per function); reused plans
  // re-decide — and re-count — at schedule time, one lookup per
  // function, so a warm resident run reports the same manifest
  // traffic a warm fresh-process run would.
  std::vector<std::vector<char>> Skip(NumFiles);
  for (size_t I = 0; I != NumFiles; ++I) {
    if (!Plans[I]->Ok)
      continue;
    const std::vector<verifier::FunctionObligations> &Funcs =
        Plans[I]->Functions;
    Skip[I].assign(Funcs.size(), 0);
    for (size_t F = 0; F != Funcs.size(); ++F) {
      const verifier::FunctionObligations &FO = Funcs[F];
      if (FO.SkippedUnchanged) {
        Skip[I][F] = 1;
        if (Reused[I] && Manifest)
          (void)Manifest->lookup(functionKey(FO.Fingerprint));
      } else if (Reused[I] && Manifest && FO.Fingerprint != 0 &&
                 Manifest->lookup(functionKey(FO.Fingerprint))) {
        Skip[I][F] = 1;
      }
    }
  }

  // Wave 2 — one task per proof obligation, interleaved across all
  // functions and files.
  std::deque<FuncJob> Jobs2;
  for (size_t I = 0; I != NumFiles; ++I) {
    if (!Plans[I]->Ok)
      continue;
    const std::vector<verifier::FunctionObligations> &Funcs =
        Plans[I]->Functions;
    for (size_t F = 0; F != Funcs.size(); ++F) {
      if (Skip[I][F])
        continue; // Discharged by the manifest; no job, no solver.
      const verifier::FunctionObligations &FO = Funcs[F];
      FuncJob &J = Jobs2.emplace_back();
      J.FileIdx = I;
      J.FO = &FO;
      J.Slots.resize(FO.VCs.size());
      if (Opts.Verify.CheckVacuity)
        J.VacuityProbe = verifier::Verifier::vacuityProbe(FO.VCs);
    }
  }

  std::vector<WorkerState> Workers(Jobs);
  std::mutex CreateMu; // Solver creation touches Z3 global tables.
  auto solverFor = [&](unsigned W, size_t FileIdx) -> smt::SmtSolver & {
    const smt::SolverOptions &SO = FileSolverOpts[FileIdx];
    const void *Key =
        SO.BackgroundAxioms.empty()
            ? nullptr // Axiom-free solvers are interchangeable.
            : static_cast<const void *>(Plans[FileIdx]);
    WorkerState &WS = Workers[W];
    if (WS.Key != Key) {
      std::lock_guard<std::mutex> Lock(CreateMu);
      WS.Solver = smt::createSolver(SO);
      WS.Key = Key;
    }
    return *WS.Solver;
  };

  // Key pass: hash every non-trivial obligation once, up front — the
  // canonical key, and, when the cone-of-influence slice is proper,
  // the slice-alias key (the hash of the sliced obligation). The
  // slots keep both; the fast pass, escalation, stores and remote
  // prefetch all reuse them without re-hashing. AliasSound marks VCs
  // whose fast-pass session asserts exactly the sliced conjunct set
  // (asserted prefix contained in the slice), where a session proof
  // may be *recorded* under the alias; lookups through the alias are
  // sound unconditionally (the sliced guard is weaker).
  std::vector<FuncJob *> Order;
  Order.reserve(Jobs2.size());
  for (FuncJob &J : Jobs2)
    Order.push_back(&J);
  if (Cache) {
    for (FuncJob &J : Jobs2) {
      const size_t PrefixLen =
          verifier::Verifier::commonGuardPrefix(J.FO->VCs);
      unsigned Probed = 0, Resident = 0;
      for (size_t K = 0; K != J.FO->VCs.size(); ++K) {
        const vir::VC &VC = J.FO->VCs[K];
        if (verifier::Verifier::triviallyValid(VC))
          continue; // The fast pass never hashes these either.
        VCSlot &S = J.Slots[K];
        S.Key = smt::hashObligation(
            VC.Guard, VC.Cond, FileSolverOpts[J.FileIdx], Fingerprint);
        if (VC.Preprocessed && VC.Sliced.size() < VC.Conjuncts.size()) {
          S.AliasKey =
              smt::hashObligation(VC.slicedGuard(), VC.Cond,
                                  FileSolverOpts[J.FileIdx], Fingerprint);
          // Prefix ⊆ slice? Sliced is ascending, so the prefix is
          // contained iff its first PrefixLen entries are 0..P-1 —
          // and then a session check (prefix + sliced extras past the
          // prefix) asserts the slice exactly.
          bool PrefixInSlice = VC.Sliced.size() >= PrefixLen;
          for (size_t P = 0; PrefixInSlice && P != PrefixLen; ++P)
            PrefixInSlice = VC.Sliced[P] == static_cast<uint32_t>(P);
          S.AliasSound = PrefixInSlice;
        }
        ++Probed;
        if (Cache->contains(S.Key) ||
            (S.AliasKey != 0 && Cache->contains(S.AliasKey)))
          ++Resident;
      }
      J.CachedFrac =
          Probed ? static_cast<double>(Resident) / Probed : 1.0;
    }
    // Cache-aware dispatch order: start the functions with the
    // highest cached fraction first, so warm work drains early and
    // cold solves occupy the tail. Verdict- and report-neutral:
    // aggregation stays source-ordered, the probe above used
    // contains() (no hit/miss traffic), and the counted lookup()
    // still happens at solve time.
    if (Opts.CacheAware)
      std::stable_sort(Order.begin(), Order.end(),
                       [](const FuncJob *A, const FuncJob *B) {
                         return A->CachedFrac > B->CachedFrac;
                       });
  }

  // Remote prefetch: one batched multi-get per function, in dispatch
  // order, before any solver dispatch — by the time a worker reaches
  // a function, its remote results have usually landed in the local
  // map. Keys already resident are filtered inside prefetchAsync
  // (stat-neutral); alias keys ride along so a fleet sibling's sliced
  // proof is found too. The vacuity probe's key is hashed here the
  // same way solveOne will re-derive it.
  if (Cache && Cache->remoteAttached()) {
    for (FuncJob *J : Order) {
      std::vector<uint64_t> Keys;
      Keys.reserve(2 * J->Slots.size() + 1);
      if (J->VacuityProbe)
        Keys.push_back(smt::hashObligation(
            J->VacuityProbe->Guard, vir::mkBool(false),
            FileSolverOpts[J->FileIdx], Fingerprint));
      for (const VCSlot &S : J->Slots) {
        if (S.Key != 0)
          Keys.push_back(S.Key);
        if (S.AliasKey != 0)
          Keys.push_back(S.AliasKey);
      }
      Cache->prefetchAsync(Keys);
    }
  }

  // The timeout-escalation ladder: a per-function fast pass (scoped
  // incremental session, sliced guards, short budget) settles the
  // easy majority; anything it cannot prove is re-checked one-shot,
  // unsliced, at the full budget. Fast answers are only trusted when
  // Valid (slicing weakens guards; the short budget yields unknowns),
  // so final verdicts equal a run without the ladder.
  const unsigned FastTimeout = Opts.Verify.FastTimeoutMs;
  // TimeoutMs == 0 means an unlimited full budget (Z3's convention),
  // which any fast budget undercuts.
  const bool Ladder =
      FastTimeout > 0 && (Opts.Verify.TimeoutMs == 0 ||
                          FastTimeout < Opts.Verify.TimeoutMs);

  // Escalation lanes: with a portfolio width >= 2 every escalated
  // obligation races the resolved tactic profiles instead of
  // re-running the stock strategy alone. Bad profile names were
  // rejected by the CLI already; a stray error here just keeps the
  // single-strategy escalation.
  std::string LaneError;
  const std::vector<smt::TacticProfile> Lanes = V.portfolioLanes(LaneError);

  /// One-shot full-budget check of one obligation (Idx < 0: the
  /// vacuity probe). \p CacheLookup is false for escalations — their
  /// miss was already counted by the fast pass, which also stored
  /// nothing (so the warm-rerun hit-rate contract is preserved).
  auto solveOne = [&](unsigned W, FuncJob &J, int Idx, bool CacheLookup) {
    if (shutdownRequested())
      return; // Slot stays unsolved; aggregation reports "cancelled".
    vir::LExprRef Guard, Goal;
    if (Idx < 0) {
      Guard = J.VacuityProbe->Guard;
      Goal = vir::mkBool(false);
    } else {
      if (J.Cancelled.load(std::memory_order_relaxed))
        return; // Skipped; slot stays unsolved.
      const vir::VC &VC = J.FO->VCs[Idx];
      Guard = VC.Guard;
      Goal = VC.Cond;
    }
    smt::CheckResult CR;
    uint64_t Key = 0;
    if (Cache) {
      Key = Idx >= 0 && J.Slots[Idx].Key
                ? J.Slots[Idx].Key
                : smt::hashObligation(Guard, Goal, FileSolverOpts[J.FileIdx],
                                      Fingerprint);
    }
    VCSlot &S = Idx < 0 ? J.Vacuity : J.Slots[Idx];
    bool Solve = true;
    if (Cache && CacheLookup) {
      if (auto Hit = Cache->lookup(Key, Idx >= 0 ? S.AliasKey : 0)) {
        CR = *Hit;
        Solve = false;
        S.FromCache = true; // Vacuity hits count too (solved_vcs math).
        J.Hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        J.Misses.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (Solve) {
      if (Idx >= 0 && S.Escalated && Lanes.size() >= 2) {
        smt::PortfolioResult PR = smt::checkPortfolio(
            FileSolverOpts[J.FileIdx], Lanes, Guard, Goal);
        CR = PR.R;
        S.PortfolioMs = PR.TotalSolverMs;
        S.Winner = PR.WinnerProfile;
      } else {
        CR = solverFor(W, J.FileIdx).checkValid(Guard, Goal);
      }
      if (Cache)
        Cache->store(Key, CR);
    }
    S.Solved = true;
    S.R = std::move(CR);
    if (Idx >= 0 && S.R.Status != smt::CheckStatus::Valid &&
        Opts.Verify.StopAtFirstFailure)
      J.Cancelled.store(true, std::memory_order_relaxed);
  };

  /// Fast-pass prologue of one function: trivial short-circuits and
  /// cache hits. Returns the slot indices still needing a solver.
  auto prePass = [&](FuncJob &J) {
    std::vector<size_t> Need;
    const std::vector<vir::VC> &VCs = J.FO->VCs;
    for (size_t K = 0; K != VCs.size(); ++K) {
      const vir::VC &VC = VCs[K];
      VCSlot &S = J.Slots[K];
      if (verifier::Verifier::triviallyValid(VC)) {
        // No solver and no cache traffic: the verdict is syntactic.
        S.Solved = true;
        S.Trivial = true;
        S.R.Status = smt::CheckStatus::Valid;
        continue;
      }
      if (Cache) {
        if (!S.Key) // The key pass hashed it already (non-trivial VCs).
          S.Key = smt::hashObligation(
              VC.Guard, VC.Cond, FileSolverOpts[J.FileIdx], Fingerprint);
        if (auto Hit = Cache->lookup(S.Key, S.AliasKey)) {
          S.R = *Hit;
          S.Solved = true;
          S.FromCache = true;
          J.Hits.fetch_add(1, std::memory_order_relaxed);
          if (S.R.Status != smt::CheckStatus::Valid &&
              Opts.Verify.StopAtFirstFailure)
            J.Cancelled.store(true, std::memory_order_relaxed);
          continue;
        }
        J.Misses.fetch_add(1, std::memory_order_relaxed);
      }
      Need.push_back(K);
    }
    return Need;
  };

  /// The first PrefixLen shared guard conjuncts of a function's VCs —
  /// what a session (or a session scope) asserts once.
  auto funcPrefix = [](const std::vector<vir::VC> &VCs, size_t PrefixLen) {
    return std::vector<vir::LExprRef>(
        VCs.front().Conjuncts.begin(),
        VCs.front().Conjuncts.begin() + PrefixLen);
  };

  /// Session checks of one function's remaining obligations. Assumes
  /// the function's guard prefix is already asserted on \p Solver
  /// (plain session or pushed scope). Only Valid answers settle slots.
  auto sessionChecks = [&](smt::SmtSolver &Solver, FuncJob &J,
                           const std::vector<size_t> &Need,
                           size_t PrefixLen) {
    for (size_t K : Need) {
      if (J.Cancelled.load(std::memory_order_relaxed) ||
          shutdownRequested())
        break; // Slots stay unsolved; the escalation wave skips them too.
      const vir::VC &VC = J.FO->VCs[K];
      VCSlot &S = J.Slots[K];
      smt::CheckResult CR = Solver.checkSession(
          verifier::Verifier::sessionExtras(VC, PrefixLen), VC.Cond);
      S.FastMs = CR.TimeMs;
      if (CR.Status == smt::CheckStatus::Valid) {
        // Valid under a weaker guard and shorter budget is Valid for
        // the canonical obligation, so the cache may keep it under
        // the canonical key. When the session asserted exactly the
        // sliced conjunct set (AliasSound), the proof also *is* a
        // proof of the sliced obligation — record the alias too, so
        // any sibling VC (here or fleet-wide) that slices to the same
        // reduced form hits without solving.
        S.Solved = true;
        S.R = std::move(CR);
        if (Cache)
          Cache->store(S.Key, S.R, S.AliasSound ? S.AliasKey : 0);
      }
    }
  };

  /// Fast pass over one whole function: prologue, then a single
  /// incremental session for the rest.
  auto fastFunc = [&](unsigned W, FuncJob &J) {
    std::vector<size_t> Need = prePass(J);
    if (Need.empty())
      return;
    smt::SmtSolver &Solver = solverFor(W, J.FileIdx);
    size_t PrefixLen = verifier::Verifier::commonGuardPrefix(J.FO->VCs);
    Solver.beginSession(funcPrefix(J.FO->VCs, PrefixLen), FastTimeout);
    sessionChecks(Solver, J, Need, PrefixLen);
    Solver.endSession();
  };

  /// Shared-prelude fast pass over all of one file's functions: the
  /// background axioms (the session frame) are asserted and lowered
  /// once, each function's guard prefix stacks as a scope above them.
  /// Falls back to per-function sessions when the backend lacks
  /// scoping or the scoped session dies. All jobs come from one plan,
  /// so every expression outlives the session (the solver memoizes
  /// lowerings by node address across scope pops).
  auto fastFile = [&](unsigned W, const std::vector<FuncJob *> &FileJobs) {
    if (FileJobs.empty())
      return;
    smt::SmtSolver &Solver = solverFor(W, FileJobs.front()->FileIdx);
    Solver.beginSharedSession(FastTimeout);
    bool Shared = true;
    for (FuncJob *JP : FileJobs) {
      FuncJob &J = *JP;
      if (shutdownRequested())
        break;
      std::vector<size_t> Need = prePass(J);
      if (Need.empty())
        continue;
      size_t PrefixLen = verifier::Verifier::commonGuardPrefix(J.FO->VCs);
      std::vector<vir::LExprRef> Prefix = funcPrefix(J.FO->VCs, PrefixLen);
      if (Shared && Solver.pushSessionScope(Prefix)) {
        sessionChecks(Solver, J, Need, PrefixLen);
        Solver.popSessionScope();
      } else {
        // beginSession tears down the shared frame, so sharing cannot
        // resume mid-file; the rest of the file runs per-function.
        Shared = false;
        Solver.beginSession(Prefix, FastTimeout);
        sessionChecks(Solver, J, Need, PrefixLen);
        Solver.endSession();
      }
    }
    Solver.endSession();
  };

  if (Ladder) {
    // Wave 2a — vacuity probes (always full-guard, full-budget: they
    // test guard satisfiability, which slicing would change) and the
    // fast sessions, in cache-aware dispatch order. With SharePrelude
    // the fast pass groups per file (one task per file, its functions
    // serialized on one worker against one shared-frame session);
    // otherwise one task per function.
    for (FuncJob *J : Order)
      if (J->VacuityProbe)
        Pool.submit(
            [&solveOne, J](unsigned W) { solveOne(W, *J, -1, true); });
    if (Opts.SharePrelude) {
      std::map<size_t, std::vector<FuncJob *>> Grouped;
      std::vector<size_t> FileOrder;
      for (FuncJob *J : Order) {
        auto [It, New] = Grouped.try_emplace(J->FileIdx);
        if (New)
          FileOrder.push_back(J->FileIdx);
        It->second.push_back(J);
      }
      for (size_t I : FileOrder)
        Pool.submit([&fastFile, FJ = std::move(Grouped[I])](unsigned W) {
          fastFile(W, FJ);
        });
    } else {
      for (FuncJob *J : Order)
        Pool.submit([&fastFunc, J](unsigned W) { fastFunc(W, *J); });
    }
    Pool.wait();
    // Wave 2b — escalations, one task per *function* running its
    // unsettled obligations serially in VC order: the first failure
    // stops the function's remaining escalations deterministically
    // (racing them as individual tasks wastes full-budget solves
    // after a failure). Submitted after the barrier: ThreadPool's
    // bounded queue forbids submitting from worker threads.
    for (FuncJob &J : Jobs2) {
      bool Any = false;
      for (size_t K = 0; K != J.Slots.size(); ++K)
        if (!J.Slots[K].Solved) {
          J.Slots[K].Escalated = true;
          Any = true;
        }
      if (Any)
        Pool.submit([&solveOne, &J](unsigned W) {
          for (size_t K = 0; K != J.Slots.size(); ++K)
            if (!J.Slots[K].Solved)
              solveOne(W, J, static_cast<int>(K), false);
        });
    }
    Pool.wait();
  } else {
    for (FuncJob *JP : Order) {
      FuncJob &J = *JP;
      if (J.VacuityProbe)
        Pool.submit(
            [&solveOne, &J](unsigned W) { solveOne(W, J, -1, true); });
      for (size_t K = 0; K != J.Slots.size(); ++K)
        Pool.submit([&solveOne, &J, K](unsigned W) {
          solveOne(W, J, static_cast<int>(K), true);
        });
    }
    Pool.wait();
  }

  // Aggregation — strictly in source order (files as given, functions
  // and VCs as planned); completion order cannot influence the report.
  const bool Interrupted = shutdownRequested();
  Rep.Interrupted = Interrupted;
  Rep.AllVerified = true;
  auto NextJob = Jobs2.begin();
  for (size_t I = 0; I != NumFiles; ++I) {
    FileReport FR;
    FR.Path = Paths[I];
    FR.Ok = Plans[I]->Ok;
    FR.Error = Plans[I]->Error;
    if (!FR.Ok) {
      ++Rep.NumFrontendErrors;
      Rep.AllVerified = false;
      Rep.Files.push_back(std::move(FR));
      continue;
    }
    const std::vector<verifier::FunctionObligations> &Funcs =
        Plans[I]->Functions;
    for (size_t FIdx = 0; FIdx != Funcs.size(); ++FIdx) {
      const verifier::FunctionObligations &FO = Funcs[FIdx];
      if (Skip[I][FIdx]) {
        // Discharged by the manifest: no job was scheduled, nothing
        // touched a solver. Replay the recorded shape (VC count,
        // annotation counts) so totals stay comparable to a cold run.
        FunctionReport Fn;
        Fn.SkippedUnchanged = true;
        Fn.ManifestKey = functionKey(FO.Fingerprint);
        verifier::FunctionResult &R = Fn.Result;
        R.Name = FO.Name;
        R.SourceIndex = FO.SourceIndex;
        R.Verified = true;
        if (Manifest)
          if (std::optional<ManifestEntry> E =
                  Manifest->peek(Fn.ManifestKey)) {
            R.NumVCs = static_cast<unsigned>(E->VcKeys.size());
            R.Annotations.Manual = E->Manual;
            R.Annotations.Ghost = E->Ghost;
          }
        ++Rep.NumFunctions;
        ++Rep.NumVerified;
        ++Rep.NumSkippedUnchanged;
        Rep.NumVCs += R.NumVCs;
        FR.Functions.push_back(std::move(Fn));
        continue;
      }
      FuncJob &J = *NextJob++;
      FunctionReport Fn;
      verifier::FunctionResult &R = Fn.Result;
      R.Name = FO.Name;
      R.SourceIndex = FO.SourceIndex;
      R.Annotations = FO.Annotations;
      R.NumVCs = static_cast<unsigned>(FO.VCs.size());
      R.Verified = true;
      if (J.VacuityProbe && J.Vacuity.Solved) {
        R.TimeMs += J.Vacuity.R.TimeMs;
        if (J.Vacuity.R.Status == smt::CheckStatus::Valid) {
          R.Verified = false;
          R.Failures.push_back({"vacuity check: ghost assumptions are "
                                "unsatisfiable",
                                J.VacuityProbe->Loc,
                                smt::CheckStatus::Invalid,
                                J.Vacuity.R.TimeMs, ""});
        }
      }
      for (size_t K = 0; K != J.Slots.size(); ++K) {
        const VCSlot &S = J.Slots[K];
        if (!S.Solved) {
          R.TimeMs += S.FastMs; // Fast-pass attempt of a cancelled VC.
          continue; // Cancelled after an earlier observed failure.
        }
        R.TimeMs += S.R.TimeMs;
        if (S.Escalated)
          R.TimeMs += S.FastMs; // The unsuccessful fast attempt.
        if (S.R.Status != smt::CheckStatus::Valid) {
          R.Verified = false;
          const vir::VC &VC = J.FO->VCs[K];
          R.Failures.push_back(
              {VC.Reason, VC.Loc, S.R.Status, S.R.TimeMs, S.R.Detail});
          if (Opts.Verify.StopAtFirstFailure)
            break;
        }
      }
      if (Interrupted && R.Verified) {
        // A shutdown request left obligations unsolved with no
        // observed failure; "verified" would be a lie. Report the
        // function failed with an explicit cancellation record.
        bool AnyUnsolved = J.VacuityProbe && !J.Vacuity.Solved;
        for (const VCSlot &S : J.Slots)
          if (!S.Solved) {
            AnyUnsolved = true;
            break;
          }
        if (AnyUnsolved) {
          R.Verified = false;
          R.Failures.push_back({"cancelled: shutdown requested",
                                {},
                                smt::CheckStatus::Unknown,
                                0.0,
                                ""});
        }
      }
      R.VCStats.resize(J.Slots.size());
      for (size_t K = 0; K != J.Slots.size(); ++K) {
        const VCSlot &S = J.Slots[K];
        const vir::VC &VC = J.FO->VCs[K];
        verifier::VCStat &St = R.VCStats[K];
        St.Reason = VC.Reason;
        St.AssumesTotal = static_cast<unsigned>(VC.Conjuncts.size());
        St.AssumesSliced = static_cast<unsigned>(
            VC.Preprocessed ? VC.Sliced.size() : VC.Conjuncts.size());
        St.SolveTimeMs =
            S.FastMs +
            (S.Escalated && S.Solved
                 ? (S.PortfolioMs > 0.0 ? S.PortfolioMs : S.R.TimeMs)
                 : 0.0);
        if (S.Solved && !S.Escalated && !S.Trivial && !S.FromCache)
          St.SolveTimeMs = S.R.TimeMs;
        St.Escalated = S.Escalated;
        St.Trivial = S.Trivial;
        St.GoalHash = vir::stableExprHash(VC.Cond);
        if (S.Solved) {
          St.Status = S.R.Status;
          St.WinnerProfile = S.Winner;
          St.Retries = S.R.Retries;
        } else {
          // Never solved: skipped by first-failure cancellation, not
          // a solver Unknown. Reports must keep the two apart.
          St.Cancelled = true;
        }
        if (S.Escalated)
          ++R.Escalations;
        if (S.Solved && !S.Trivial && !S.FromCache)
          ++Fn.SolvedVCs; // Reached Z3 (the zero-solve gate's metric).
      }
      if (J.VacuityProbe && J.Vacuity.Solved && !J.Vacuity.FromCache)
        ++Fn.SolvedVCs;
      R.EffectiveTimeoutMs =
          Ladder && R.Escalations == 0 ? FastTimeout : Opts.Verify.TimeoutMs;
      Fn.CacheHits = J.Hits.load();
      Fn.CacheMisses = J.Misses.load();
      Rep.NumSolvedVCs += Fn.SolvedVCs;
      if (Manifest && R.Verified) {
        // Record the function for future skips. Only all-Valid
        // functions qualify: a skip may only ever replay Valid.
        bool AllValid = true;
        ManifestEntry E;
        E.VcKeys.reserve(J.Slots.size());
        for (size_t K = 0; K != J.Slots.size(); ++K) {
          const VCSlot &S = J.Slots[K];
          if (!S.Solved || S.R.Status != smt::CheckStatus::Valid) {
            AllValid = false;
            break;
          }
          // Trivial slots (and the no-ladder path) never hashed their
          // obligation; compute the canonical key now.
          E.VcKeys.push_back(
              S.Key ? S.Key
                    : smt::hashObligation(J.FO->VCs[K].Guard,
                                          J.FO->VCs[K].Cond,
                                          FileSolverOpts[J.FileIdx],
                                          Fingerprint));
        }
        if (AllValid) {
          E.Name = R.Name;
          E.Manual = R.Annotations.Manual;
          E.Ghost = R.Annotations.Ghost;
          Manifest->record(functionKey(FO.Fingerprint), std::move(E));
        }
      }
      FR.TimeMs += R.TimeMs;
      ++Rep.NumFunctions;
      Rep.NumVCs += R.NumVCs;
      if (R.Verified)
        ++Rep.NumVerified;
      else {
        ++Rep.NumFailed;
        Rep.AllVerified = false;
      }
      FR.Functions.push_back(std::move(Fn));
    }
    Rep.Files.push_back(std::move(FR));
  }

  // Flush = compaction; entries were journal-durable at store time.
  // Report per-run deltas (see Cache0/Manifest0) so a resident
  // service's warm request matches a fresh process byte for byte.
  if (Cache) {
    Cache->flush();
    CacheStats S = Cache->stats();
    Rep.Cache.Hits = S.Hits - Cache0.Hits;
    Rep.Cache.Misses = S.Misses - Cache0.Misses;
    Rep.Cache.Stores = S.Stores - Cache0.Stores;
    Rep.Cache.L1Hits = S.L1Hits - Cache0.L1Hits;
    Rep.Cache.L2Hits = S.L2Hits - Cache0.L2Hits;
    Rep.Cache.RemoteHits = S.RemoteHits - Cache0.RemoteHits;
    Rep.Cache.RemoteMisses = S.RemoteMisses - Cache0.RemoteMisses;
    Rep.Cache.RemoteErrors = S.RemoteErrors - Cache0.RemoteErrors;
    Rep.Cache.RemoteWaitMs = S.RemoteWaitMs - Cache0.RemoteWaitMs;
  }
  if (Manifest) {
    Manifest->flush();
    ManifestStats S = Manifest->stats();
    Rep.Manifest.Hits = S.Hits - Manifest0.Hits;
    Rep.Manifest.Misses = S.Misses - Manifest0.Misses;
    Rep.Manifest.Records = S.Records - Manifest0.Records;
  }
  if (Rep.Interrupted)
    Rep.AllVerified = false;
  Rep.WallMs = Wall.millis();
  return Rep;
}

//===----------------------------------------------------------------------===//
// JSON report
//===----------------------------------------------------------------------===//

namespace {

void jsonEscape(const std::string &S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Tiny structured JSON writer: one key per line, two-space indent,
/// deterministic key order — grep-friendly for the CI scripts that
/// consume the report without a JSON parser.
class JsonWriter {
public:
  std::string Out;

  void open(const char *Bracket) {
    indent();
    Out += Bracket;
    Out += '\n';
    ++Depth;
    First = true;
  }
  void openKey(const std::string &Key, const char *Bracket) {
    comma();
    indent();
    quoted(Key);
    Out += ": ";
    Out += Bracket;
    Out += '\n';
    ++Depth;
    First = true;
  }
  void close(const char *Bracket) {
    Out += '\n';
    --Depth;
    indent();
    Out += Bracket;
    First = false;
  }
  void field(const std::string &Key, const std::string &Val) {
    comma();
    indent();
    quoted(Key);
    Out += ": ";
    quoted(Val);
  }
  void field(const std::string &Key, uint64_t Val) {
    comma();
    indent();
    quoted(Key);
    Out += ": " + std::to_string(Val);
  }
  void field(const std::string &Key, bool Val) {
    comma();
    indent();
    quoted(Key);
    Out += Val ? ": true" : ": false";
  }
  void fieldMs(const std::string &Key, double Val) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", Val);
    comma();
    indent();
    quoted(Key);
    Out += ": ";
    Out += Buf;
  }
  /// Array-element object opener (no key).
  void openElem() {
    comma();
    indent();
    Out += "{\n";
    ++Depth;
    First = true;
  }

private:
  void comma() {
    if (!First)
      Out += ",\n";
    First = false;
  }
  void indent() { Out.append(2 * Depth, ' '); }
  void quoted(const std::string &S) {
    Out += '"';
    jsonEscape(S, Out);
    Out += '"';
  }

  unsigned Depth = 0;
  bool First = true;
};

const char *statusString(smt::CheckStatus S) {
  switch (S) {
  case smt::CheckStatus::Valid:
    return "valid";
  case smt::CheckStatus::Invalid:
    return "invalid";
  case smt::CheckStatus::Unknown:
    return "unknown";
  case smt::CheckStatus::Crashed:
    return "crashed";
  case smt::CheckStatus::ResourceLimit:
    return "resource-limit";
  }
  return "?";
}

} // namespace

std::string service::toJson(const BatchReport &Rep, bool IncludeTimes,
                            bool ChangedOnly) {
  JsonWriter W;
  W.open("{");
  W.field("schema", std::string("vcdryad-batch-v1"));
  // The job count is scheduling metadata: it is omitted alongside the
  // timings so deterministic output is byte-identical across -j.
  if (IncludeTimes)
    W.field("jobs", static_cast<uint64_t>(Rep.Jobs));
  W.field("all_verified", Rep.AllVerified);
  // Only present when true: normal runs stay byte-identical to
  // reports written before the field existed.
  if (Rep.Interrupted)
    W.field("interrupted", true);
  W.openKey("cache", "{");
  W.field("enabled", Rep.CacheEnabled);
  W.field("dir", Rep.CacheDir);
  W.field("hits", Rep.Cache.Hits);
  W.field("misses", Rep.Cache.Misses);
  W.field("stores", Rep.Cache.Stores);
  // Tier attribution (l1 = this session's proofs, l2 = the local
  // store, remote = the fleet server). Always present so consumers
  // need no feature detection; all zero when the tiers are off.
  W.field("l1_hits", Rep.Cache.L1Hits);
  W.field("l2_hits", Rep.Cache.L2Hits);
  W.field("remote_hits", Rep.Cache.RemoteHits);
  W.field("remote_misses", Rep.Cache.RemoteMisses);
  W.field("remote_errors", Rep.Cache.RemoteErrors);
  if (Rep.RemoteEnabled) {
    W.field("remote_cache", Rep.RemoteCacheAddress);
    // Blocked-on-prefetch time is timing, so it lives with the other
    // nondeterministic fields.
    if (IncludeTimes)
      W.field("remote_wait_ms", Rep.Cache.RemoteWaitMs);
  }
  W.field("incremental", Rep.IncrementalEnabled);
  if (Rep.IncrementalEnabled) {
    W.field("manifest", Rep.ManifestPath);
    W.field("manifest_hits", Rep.Manifest.Hits);
    W.field("manifest_misses", Rep.Manifest.Misses);
    W.field("manifest_records", Rep.Manifest.Records);
  }
  W.close("}");
  W.openKey("totals", "{");
  W.field("files", static_cast<uint64_t>(Rep.Files.size()));
  W.field("frontend_errors", static_cast<uint64_t>(Rep.NumFrontendErrors));
  W.field("functions", static_cast<uint64_t>(Rep.NumFunctions));
  W.field("verified", static_cast<uint64_t>(Rep.NumVerified));
  W.field("failed", static_cast<uint64_t>(Rep.NumFailed));
  W.field("vcs", static_cast<uint64_t>(Rep.NumVCs));
  W.field("skipped_unchanged",
          static_cast<uint64_t>(Rep.NumSkippedUnchanged));
  // Obligations that actually reached Z3 this run: the metric the
  // incremental zero-solve CI gate asserts on. Deterministic (unlike
  // escalation counts), so it lives outside IncludeTimes.
  W.field("solved_vcs", static_cast<uint64_t>(Rep.NumSolvedVCs));
  if (IncludeTimes)
    W.fieldMs("wall_ms", Rep.WallMs);
  W.close("}");
  W.openKey("files", "[");
  for (const FileReport &F : Rep.Files) {
    W.openElem();
    W.field("path", F.Path);
    W.field("ok", F.Ok);
    if (!F.Ok)
      W.field("error", F.Error);
    W.openKey("functions", "[");
    for (const FunctionReport &Fn : F.Functions) {
      if (ChangedOnly && Fn.SkippedUnchanged)
        continue; // --changed-only: list what actually re-verified.
      const verifier::FunctionResult &R = Fn.Result;
      W.openElem();
      W.field("name", R.Name);
      W.field("index", static_cast<uint64_t>(R.SourceIndex));
      W.field("status", std::string(R.Verified ? "verified" : "failed"));
      W.field("vcs", static_cast<uint64_t>(R.NumVCs));
      W.openKey("annotations", "{");
      W.field("manual", static_cast<uint64_t>(R.Annotations.Manual));
      W.field("ghost", static_cast<uint64_t>(R.Annotations.Ghost));
      W.close("}");
      W.field("cache_hits", static_cast<uint64_t>(Fn.CacheHits));
      W.field("cache_misses", static_cast<uint64_t>(Fn.CacheMisses));
      if (Fn.SkippedUnchanged) {
        // Manifest provenance: which recorded key discharged the skip
        // (grep it in manifest-v1.txt to see the replayed VC hashes).
        W.field("skipped_unchanged", true);
        W.field("fingerprint", hashToHex(Fn.ManifestKey));
      }
      if (IncludeTimes) {
        W.fieldMs("time_ms", R.TimeMs);
        // Ladder diagnostics. Whether a VC settles inside the fast
        // budget is timing-dependent, so everything here lives behind
        // IncludeTimes with the other nondeterministic fields.
        W.field("effective_timeout_ms",
                static_cast<uint64_t>(R.EffectiveTimeoutMs));
        W.field("escalations", static_cast<uint64_t>(R.Escalations));
        W.openKey("vc_stats", "[");
        for (const verifier::VCStat &St : R.VCStats) {
          W.openElem();
          W.field("reason", St.Reason);
          W.field("assumes_total", static_cast<uint64_t>(St.AssumesTotal));
          W.field("assumes_sliced",
                  static_cast<uint64_t>(St.AssumesSliced));
          W.fieldMs("solve_ms", St.SolveTimeMs);
          W.field("escalated", St.Escalated);
          W.field("trivial", St.Trivial);
          // "cancelled" = skipped by first-failure cancellation (never
          // handed to a solver) — distinct from a genuine "unknown".
          W.field("status",
                  std::string(St.Cancelled ? "cancelled"
                                           : statusString(St.Status)));
          if (!St.WinnerProfile.empty())
            W.field("profile", St.WinnerProfile);
          // Isolation diagnostics. goal_hash is the stable identity
          // VCDRYAD_FAULT matches against (%016x of the goal's content
          // hash); retries counts bounded fresh-worker re-solves. Both
          // ride behind IncludeTimes so --json-times=off reports stay
          // byte-identical whether solving ran isolated or in-process.
          W.field("goal_hash", hashToHex(St.GoalHash));
          W.field("retries", static_cast<uint64_t>(St.Retries));
          W.close("}");
        }
        W.close("]");
      }
      W.openKey("failures", "[");
      for (const verifier::VCOutcome &O : R.Failures) {
        W.openElem();
        W.field("reason", O.Reason);
        W.field("loc", O.Loc.str());
        W.field("status", std::string(statusString(O.Status)));
        W.field("detail", O.Detail.substr(0, 400));
        if (IncludeTimes)
          W.fieldMs("time_ms", O.TimeMs);
        W.close("}");
      }
      W.close("]");
      W.close("}");
    }
    W.close("]");
    if (IncludeTimes)
      W.fieldMs("time_ms", F.TimeMs);
    W.close("}");
  }
  W.close("]");
  W.close("}");
  W.Out += '\n';
  return W.Out;
}
