//===- Service.h - Corpus-scale verification service ------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable verification service layered on top of
/// verifier::Verifier, built for corpus-scale workloads (the paper's
/// 152-routine Table 1, CI gates, benchmark sweeps): a job scheduler
/// that fans work out across a thread pool at two granularities —
/// whole-file front ends across files, then individual VCs within and
/// across functions — with one SMT solver per worker, cancellation of
/// a function's remaining obligations at its first failure (under
/// StopAtFirstFailure), and a bounded work queue throttling the
/// producer. A content-addressed proof cache (ProofCache) intercepts
/// every obligation, making warm re-runs incremental.
///
/// Determinism: results are written into slots preallocated in source
/// order and aggregated only after the pool drains, so the report
/// never depends on completion order — a batch solved at --jobs=8
/// reports the same verdicts (and, modulo timings, the same JSON) as
/// --jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_SERVICE_H
#define VCDRYAD_SERVICE_SERVICE_H

#include "service/Manifest.h"
#include "service/ProofCache.h"
#include "verifier/Verifier.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vcdryad {
namespace service {

class SolverPool;

struct ServiceOptions {
  verifier::VerifyOptions Verify;
  /// Worker threads; 0 picks the hardware concurrency.
  unsigned Jobs = 0;
  /// Proof-cache directory; empty disables caching.
  std::string CacheDir;
  /// Bound on queued (not yet running) scheduler tasks.
  size_t QueueCap = 1024;
  /// Incremental re-verification: persist a function-level manifest
  /// (manifest-v1.txt, beside the proof cache) and on re-runs skip
  /// instrumentation, VC generation and all solver traffic for
  /// functions whose stable fingerprint matches a recorded all-Valid
  /// entry. Requires a cache directory; ignored (nothing skipped, no
  /// manifest written) when CacheDir is empty or the quantified-axiom
  /// ablation mode is on (whole-program background axioms are outside
  /// the fingerprint's dependency closure).
  bool Incremental = false;
  /// Cache-aware scheduling: before dispatch, probe the proof cache
  /// (ProofCache::contains — no stat traffic) for each obligation's
  /// canonical key and order functions with the highest cached
  /// fraction first, so warm work drains the queue early and cold
  /// solves get the tail. Verdict- and report-neutral: aggregation is
  /// source-ordered and the probe leaves hit/miss counters alone.
  bool CacheAware = true;
  /// Shared-prelude fast pass: one scoped Z3 session per *file* —
  /// background axioms asserted once at the bottom, each function's
  /// guard prefix pushed/popped as a scope above (see
  /// SmtSolver::pushSessionScope). Serializes a file's fast pass onto
  /// one worker, so it is off by default for CLI batches and on in
  /// the daemon, whose warm runs are dominated by session setup. Falls
  /// back to per-function sessions when the backend lacks scoping.
  bool SharePrelude = false;
  /// Keep parsed plans resident across run() calls (the daemon's
  /// reason to exist): a plan is reused when the FNV-1a hash of the
  /// file's *preprocessed* text (the exact parser input, includes
  /// spliced) is unchanged — sound because planning is a
  /// deterministic function of that text and the (fixed) options.
  /// Functions of a reused plan get their manifest skip decision at
  /// schedule time instead of plan time.
  bool ResidentPlans = false;
  /// Remote proof-cache server ("host:port" or "unix:/path"); empty
  /// disables the L3 tier. Requires a cache directory (the local
  /// store is the L2 tier remote results land in). Strictly
  /// best-effort: a dead or slow server never changes verdicts, only
  /// the remote_* counters.
  std::string RemoteAddress;
  /// Per-request deadline for remote operations; 0 keeps the client
  /// default (2000 ms).
  unsigned RemoteTimeoutMs = 0;
  /// Crash isolation: run every solver in a supervised out-of-process
  /// worker (`vcdryad solve-worker`, see service/SolverPool). A
  /// worker crash/OOM/hang costs one obligation (retried once), never
  /// the process. Verdict- and report-neutral apart from the
  /// per-obligation "crashed"/"resource-limit" outcomes faults
  /// produce. Off by default for CLI batches; the daemon turns it on.
  bool IsolateSolvers = false;
  /// RLIMIT_AS per worker in MiB (0 = unlimited; whole address space,
  /// Z3 included — values below ~256 starve the solver).
  unsigned SolverMemMb = 0;
  /// RLIMIT_CPU per worker in seconds (0 = unlimited).
  unsigned SolverCpuS = 0;
};

/// One function's outcome plus its cache interaction.
struct FunctionReport {
  verifier::FunctionResult Result;
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Obligations that reached the SMT solver (not trivial, not a
  /// cache hit, not cancelled). A fully warm or skipped function
  /// reports 0.
  unsigned SolvedVCs = 0;
  /// Discharged by the incremental manifest: verdicts replayed from a
  /// recorded all-Valid entry, zero solver traffic.
  bool SkippedUnchanged = false;
  /// The manifest key the skip was decided by (provenance; grep it in
  /// manifest-v1.txt). 0 unless SkippedUnchanged.
  uint64_t ManifestKey = 0;
};

struct FileReport {
  std::string Path;
  bool Ok = false;   ///< Front end succeeded.
  std::string Error; ///< Diagnostics when !Ok.
  /// In source order regardless of completion order.
  std::vector<FunctionReport> Functions;
  /// Sum of this file's solver times (not wall time — obligations of
  /// different files interleave on the pool).
  double TimeMs = 0.0;
};

struct BatchReport {
  std::vector<FileReport> Files;
  unsigned Jobs = 1;
  bool AllVerified = false;
  unsigned NumFunctions = 0;
  unsigned NumVerified = 0;
  unsigned NumFailed = 0;
  unsigned NumFrontendErrors = 0;
  unsigned NumVCs = 0;
  bool CacheEnabled = false;
  std::string CacheDir;
  CacheStats Cache;
  /// Remote (L3) proof-cache tier (see ServiceOptions::RemoteAddress).
  bool RemoteEnabled = false;
  std::string RemoteCacheAddress;
  double WallMs = 0.0;
  /// Incremental re-verification (see ServiceOptions::Incremental).
  bool IncrementalEnabled = false;
  std::string ManifestPath; ///< manifest-v1.txt path when enabled.
  ManifestStats Manifest;
  unsigned NumSkippedUnchanged = 0; ///< Functions discharged unchanged.
  unsigned NumSolvedVCs = 0;        ///< Obligations that reached Z3.
  /// A shutdown request (signal or daemon stop) cancelled part of the
  /// run: unsolved obligations report "cancelled", AllVerified is
  /// false, and the JSON carries "interrupted": true.
  bool Interrupted = false;
};

class VerificationService {
public:
  /// Opens the proof cache and manifest (when configured) once; they
  /// stay resident for the service's lifetime, so a long-lived daemon
  /// pays store load and journal replay at startup, not per request.
  explicit VerificationService(ServiceOptions Opts);
  ~VerificationService();

  /// Verifies \p Paths (each a .c file) through the scheduler. Safe
  /// to call repeatedly; cache/manifest statistics in the report are
  /// per-run deltas, so a warm rerun reports the same JSON whether it
  /// runs in a fresh process or a resident service.
  BatchReport run(const std::vector<std::string> &Paths);

  /// Flushes (compacts) the persistent stores now — the graceful-
  /// shutdown path; run() also flushes at the end of every batch.
  void flushStores();

  const ServiceOptions &options() const { return Opts; }

  /// Resident-store introspection (the daemon's status/cache-stats
  /// requests). Null when the cache is disabled.
  const ProofCache *cache() const { return Cache.get(); }
  const VcManifest *manifest() const { return Manifest.get(); }
  /// Plans currently resident (ResidentPlans mode).
  size_t residentPlanCount() const;

  /// The supervised worker pool (IsolateSolvers mode; null otherwise).
  const SolverPool *solverPool() const { return Pool.get(); }

private:
  struct ResidentPlan;

  ServiceOptions Opts;
  std::unique_ptr<SolverPool> Pool;
  std::unique_ptr<ProofCache> Cache;
  std::unique_ptr<VcManifest> Manifest;
  /// Parsed plans by *canonical* path (ResidentPlans mode only), valid
  /// while the hash of the file's preprocessed text is unchanged.
  /// Canonical keys (service::canonicalPath — realpath) make `./foo.c`,
  /// `foo.c` and a symlinked spelling reuse one plan instead of
  /// double-planning, and let watch-mode inotify paths find the plan a
  /// client registered under a different spelling. Heap entries: run()
  /// holds plan pointers across insertions.
  std::map<std::string, std::unique_ptr<ResidentPlan>> PlanCache;
  /// Guards PlanCache map operations only (find/insert/size): run()
  /// executes on the daemon's verify worker while status requests read
  /// residentPlanCount() from the event thread. Plan contents need no
  /// lock — a plan is immutable once inserted and entries are heap-
  /// allocated, so map mutation never moves them.
  mutable std::mutex PlanMu;
};

/// Cooperative shutdown flag shared by signal handlers, the daemon
/// and the scheduler: once raised, running batches stop dispatching
/// new obligations (in-flight solves finish; their results are
/// journal-durable), aggregation marks the report Interrupted, and
/// stores still flush. Async-signal-safe (a relaxed atomic store).
void requestShutdown();
bool shutdownRequested();
/// Clears the flag (tests and the daemon's between-run re-arm).
void resetShutdown();
/// Registers a self-pipe write end that requestShutdown() pokes (one
/// byte, async-signal-safe) so a poll()-based event loop wakes
/// immediately instead of waiting out its timeout. -1 unregisters.
void setShutdownWakeFd(int Fd);

/// Fingerprint of every pipeline option that shapes obligations or
/// their meaning (instrumentation tactics, axiom mode, tuple budget,
/// memory-safety checks, timeout). Folded into each cache key so
/// ablation runs never share cache entries with default runs.
uint64_t optionsFingerprint(const verifier::VerifyOptions &Opts);

/// Resolves the proof-cache (and manifest) directory against the batch
/// operands, fixing the "cache silently splits by working directory"
/// footgun: a *relative* cache path — including the built-in default
/// `.vcdryad-cache` — anchors at the first operand's directory (the
/// operand itself when it is a directory, its parent otherwise), so
/// `vcdryad batch suite/` finds the same cache no matter where it is
/// invoked from. Precedence:
///   1. \p Explicit (the user passed --cache=): absolute paths are
///      taken as-is, relative ones anchor at the operands.
///   2. $VCDRYAD_CACHE_DIR, taken as-is (the user pinned a location).
///   3. The default: <anchor>/.vcdryad-cache.
/// \p CliCache empty means the cache is disabled ("" is returned).
std::string resolveCacheDir(const std::string &CliCache, bool Explicit,
                            const std::vector<std::string> &Operands);

/// Expands batch operands into the list of .c files to verify:
/// directories are walked recursively (sorted), .c files are taken
/// as-is, and any other file is read as a manifest (one path per
/// line, '#' comments, entries resolved relative to the manifest).
/// Returns an empty list with \p Error set on malformed input.
std::vector<std::string>
collectBatchInputs(const std::vector<std::string> &Operands,
                   std::string &Error);

/// Renders the machine-readable batch report. With \p IncludeTimes
/// false every timing field and the job count are omitted, making the
/// output byte-for-byte reproducible across runs and job counts. With
/// \p ChangedOnly true, functions discharged as skipped_unchanged are
/// omitted from the per-file listings (totals still count them) — the
/// `vcdryad check --changed-only` view of what actually re-verified.
std::string toJson(const BatchReport &Report, bool IncludeTimes = true,
                   bool ChangedOnly = false);

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_SERVICE_H
