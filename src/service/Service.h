//===- Service.h - Corpus-scale verification service ------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable verification service layered on top of
/// verifier::Verifier, built for corpus-scale workloads (the paper's
/// 152-routine Table 1, CI gates, benchmark sweeps): a job scheduler
/// that fans work out across a thread pool at two granularities —
/// whole-file front ends across files, then individual VCs within and
/// across functions — with one SMT solver per worker, cancellation of
/// a function's remaining obligations at its first failure (under
/// StopAtFirstFailure), and a bounded work queue throttling the
/// producer. A content-addressed proof cache (ProofCache) intercepts
/// every obligation, making warm re-runs incremental.
///
/// Determinism: results are written into slots preallocated in source
/// order and aggregated only after the pool drains, so the report
/// never depends on completion order — a batch solved at --jobs=8
/// reports the same verdicts (and, modulo timings, the same JSON) as
/// --jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_SERVICE_H
#define VCDRYAD_SERVICE_SERVICE_H

#include "service/ProofCache.h"
#include "verifier/Verifier.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vcdryad {
namespace service {

struct ServiceOptions {
  verifier::VerifyOptions Verify;
  /// Worker threads; 0 picks the hardware concurrency.
  unsigned Jobs = 0;
  /// Proof-cache directory; empty disables caching.
  std::string CacheDir;
  /// Bound on queued (not yet running) scheduler tasks.
  size_t QueueCap = 1024;
};

/// One function's outcome plus its cache interaction.
struct FunctionReport {
  verifier::FunctionResult Result;
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
};

struct FileReport {
  std::string Path;
  bool Ok = false;   ///< Front end succeeded.
  std::string Error; ///< Diagnostics when !Ok.
  /// In source order regardless of completion order.
  std::vector<FunctionReport> Functions;
  /// Sum of this file's solver times (not wall time — obligations of
  /// different files interleave on the pool).
  double TimeMs = 0.0;
};

struct BatchReport {
  std::vector<FileReport> Files;
  unsigned Jobs = 1;
  bool AllVerified = false;
  unsigned NumFunctions = 0;
  unsigned NumVerified = 0;
  unsigned NumFailed = 0;
  unsigned NumFrontendErrors = 0;
  unsigned NumVCs = 0;
  bool CacheEnabled = false;
  std::string CacheDir;
  CacheStats Cache;
  double WallMs = 0.0;
};

class VerificationService {
public:
  explicit VerificationService(ServiceOptions Opts);

  /// Verifies \p Paths (each a .c file) through the scheduler.
  BatchReport run(const std::vector<std::string> &Paths);

  const ServiceOptions &options() const { return Opts; }

private:
  ServiceOptions Opts;
};

/// Fingerprint of every pipeline option that shapes obligations or
/// their meaning (instrumentation tactics, axiom mode, tuple budget,
/// memory-safety checks, timeout). Folded into each cache key so
/// ablation runs never share cache entries with default runs.
uint64_t optionsFingerprint(const verifier::VerifyOptions &Opts);

/// Expands batch operands into the list of .c files to verify:
/// directories are walked recursively (sorted), .c files are taken
/// as-is, and any other file is read as a manifest (one path per
/// line, '#' comments, entries resolved relative to the manifest).
/// Returns an empty list with \p Error set on malformed input.
std::vector<std::string>
collectBatchInputs(const std::vector<std::string> &Operands,
                   std::string &Error);

/// Renders the machine-readable batch report. With \p IncludeTimes
/// false every timing field and the job count are omitted, making the
/// output byte-for-byte reproducible across runs and job counts.
std::string toJson(const BatchReport &Report, bool IncludeTimes = true);

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_SERVICE_H
