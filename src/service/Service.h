//===- Service.h - Corpus-scale verification service ------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable verification service layered on top of
/// verifier::Verifier, built for corpus-scale workloads (the paper's
/// 152-routine Table 1, CI gates, benchmark sweeps): a job scheduler
/// that fans work out across a thread pool at two granularities —
/// whole-file front ends across files, then individual VCs within and
/// across functions — with one SMT solver per worker, cancellation of
/// a function's remaining obligations at its first failure (under
/// StopAtFirstFailure), and a bounded work queue throttling the
/// producer. A content-addressed proof cache (ProofCache) intercepts
/// every obligation, making warm re-runs incremental.
///
/// Determinism: results are written into slots preallocated in source
/// order and aggregated only after the pool drains, so the report
/// never depends on completion order — a batch solved at --jobs=8
/// reports the same verdicts (and, modulo timings, the same JSON) as
/// --jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_SERVICE_H
#define VCDRYAD_SERVICE_SERVICE_H

#include "service/Manifest.h"
#include "service/ProofCache.h"
#include "verifier/Verifier.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vcdryad {
namespace service {

struct ServiceOptions {
  verifier::VerifyOptions Verify;
  /// Worker threads; 0 picks the hardware concurrency.
  unsigned Jobs = 0;
  /// Proof-cache directory; empty disables caching.
  std::string CacheDir;
  /// Bound on queued (not yet running) scheduler tasks.
  size_t QueueCap = 1024;
  /// Incremental re-verification: persist a function-level manifest
  /// (manifest-v1.txt, beside the proof cache) and on re-runs skip
  /// instrumentation, VC generation and all solver traffic for
  /// functions whose stable fingerprint matches a recorded all-Valid
  /// entry. Requires a cache directory; ignored (nothing skipped, no
  /// manifest written) when CacheDir is empty or the quantified-axiom
  /// ablation mode is on (whole-program background axioms are outside
  /// the fingerprint's dependency closure).
  bool Incremental = false;
};

/// One function's outcome plus its cache interaction.
struct FunctionReport {
  verifier::FunctionResult Result;
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Obligations that reached the SMT solver (not trivial, not a
  /// cache hit, not cancelled). A fully warm or skipped function
  /// reports 0.
  unsigned SolvedVCs = 0;
  /// Discharged by the incremental manifest: verdicts replayed from a
  /// recorded all-Valid entry, zero solver traffic.
  bool SkippedUnchanged = false;
  /// The manifest key the skip was decided by (provenance; grep it in
  /// manifest-v1.txt). 0 unless SkippedUnchanged.
  uint64_t ManifestKey = 0;
};

struct FileReport {
  std::string Path;
  bool Ok = false;   ///< Front end succeeded.
  std::string Error; ///< Diagnostics when !Ok.
  /// In source order regardless of completion order.
  std::vector<FunctionReport> Functions;
  /// Sum of this file's solver times (not wall time — obligations of
  /// different files interleave on the pool).
  double TimeMs = 0.0;
};

struct BatchReport {
  std::vector<FileReport> Files;
  unsigned Jobs = 1;
  bool AllVerified = false;
  unsigned NumFunctions = 0;
  unsigned NumVerified = 0;
  unsigned NumFailed = 0;
  unsigned NumFrontendErrors = 0;
  unsigned NumVCs = 0;
  bool CacheEnabled = false;
  std::string CacheDir;
  CacheStats Cache;
  double WallMs = 0.0;
  /// Incremental re-verification (see ServiceOptions::Incremental).
  bool IncrementalEnabled = false;
  std::string ManifestPath; ///< manifest-v1.txt path when enabled.
  ManifestStats Manifest;
  unsigned NumSkippedUnchanged = 0; ///< Functions discharged unchanged.
  unsigned NumSolvedVCs = 0;        ///< Obligations that reached Z3.
};

class VerificationService {
public:
  explicit VerificationService(ServiceOptions Opts);

  /// Verifies \p Paths (each a .c file) through the scheduler.
  BatchReport run(const std::vector<std::string> &Paths);

  const ServiceOptions &options() const { return Opts; }

private:
  ServiceOptions Opts;
};

/// Fingerprint of every pipeline option that shapes obligations or
/// their meaning (instrumentation tactics, axiom mode, tuple budget,
/// memory-safety checks, timeout). Folded into each cache key so
/// ablation runs never share cache entries with default runs.
uint64_t optionsFingerprint(const verifier::VerifyOptions &Opts);

/// Resolves the proof-cache (and manifest) directory against the batch
/// operands, fixing the "cache silently splits by working directory"
/// footgun: a *relative* cache path — including the built-in default
/// `.vcdryad-cache` — anchors at the first operand's directory (the
/// operand itself when it is a directory, its parent otherwise), so
/// `vcdryad batch suite/` finds the same cache no matter where it is
/// invoked from. Precedence:
///   1. \p Explicit (the user passed --cache=): absolute paths are
///      taken as-is, relative ones anchor at the operands.
///   2. $VCDRYAD_CACHE_DIR, taken as-is (the user pinned a location).
///   3. The default: <anchor>/.vcdryad-cache.
/// \p CliCache empty means the cache is disabled ("" is returned).
std::string resolveCacheDir(const std::string &CliCache, bool Explicit,
                            const std::vector<std::string> &Operands);

/// Expands batch operands into the list of .c files to verify:
/// directories are walked recursively (sorted), .c files are taken
/// as-is, and any other file is read as a manifest (one path per
/// line, '#' comments, entries resolved relative to the manifest).
/// Returns an empty list with \p Error set on malformed input.
std::vector<std::string>
collectBatchInputs(const std::vector<std::string> &Operands,
                   std::string &Error);

/// Renders the machine-readable batch report. With \p IncludeTimes
/// false every timing field and the job count are omitted, making the
/// output byte-for-byte reproducible across runs and job counts. With
/// \p ChangedOnly true, functions discharged as skipped_unchanged are
/// omitted from the per-file listings (totals still count them) — the
/// `vcdryad check --changed-only` view of what actually re-verified.
std::string toJson(const BatchReport &Report, bool IncludeTimes = true,
                   bool ChangedOnly = false);

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_SERVICE_H
