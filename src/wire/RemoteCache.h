//===- RemoteCache.h - Remote proof-cache client (L3 tier) ------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the fleet proof-sharing protocol: a thin,
/// thread-safe RPC wrapper over the wire codec that the tiered
/// ProofCache uses as its L3. Design constraints, in order:
///
///   1. Verdicts are never affected. Every operation returns false on
///      any transport, framing, or server problem; the caller treats
///      that exactly like a miss and solves locally.
///   2. Latency is bounded. Each request runs under a per-request
///      deadline (connect + send + receive all inside it), with a
///      bounded number of retries under exponential backoff.
///   3. A dead server costs almost nothing. After a few consecutive
///      failures the circuit breaker opens and operations fail fast
///      (no syscalls) until a cool-down elapses, so a fleet client
///      outliving its server degrades to local-only speed.
///
/// The connection is persistent across requests (request/response
/// frames over one stream) and transparently re-established after
/// errors. One in-flight request at a time (internal mutex) — the
/// ProofCache funnels all remote traffic through its single prefetch
/// worker anyway.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_WIRE_REMOTECACHE_H
#define VCDRYAD_WIRE_REMOTECACHE_H

#include "wire/Codec.h"
#include "wire/Net.h"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vcdryad {
namespace wire {

struct RemoteClientOptions {
  /// "host:port" or "unix:/path".
  std::string Address;
  /// Per-request deadline (covers connect, send and receive).
  unsigned TimeoutMs = 2000;
  /// Additional attempts after the first failure.
  unsigned Retries = 2;
  /// First backoff; doubles per retry (50, 100, ...).
  unsigned BackoffMs = 50;
  /// Consecutive failed operations before the breaker opens.
  unsigned BreakerThreshold = 3;
  /// How long an open breaker rejects without trying (then half-open:
  /// the next operation probes the server again).
  unsigned BreakerCooldownMs = 30000;
  /// Telemetry identity stamped on put records ("host/pid" default).
  std::string Provenance;
};

struct RemoteClientStats {
  uint64_t Ops = 0;       ///< Operations attempted (breaker-rejected too).
  uint64_t Errors = 0;    ///< Operations that failed (incl. fast-fail).
  uint64_t Reconnects = 0;
};

class RemoteCache {
public:
  explicit RemoteCache(RemoteClientOptions Opts);
  ~RemoteCache();

  RemoteCache(const RemoteCache &) = delete;
  RemoteCache &operator=(const RemoteCache &) = delete;

  const std::string &address() const { return Opts.Address; }
  unsigned timeoutMs() const { return Opts.TimeoutMs; }
  /// False when the address failed to parse; every op fails fast.
  bool valid() const { return AddrValid; }

  /// Multi-get: fills \p Found with the records the server holds for
  /// \p Keys (subset, any order). False on any failure.
  bool multiGet(uint64_t OptionsHash, const std::vector<uint64_t> &Keys,
                std::vector<ProofRecord> &Found, std::string &Error);

  /// Put-batch; \p Accepted is the count of records the server took
  /// (duplicates and non-Valid verdicts are silently dropped there).
  bool putBatch(const std::vector<ProofRecord> &Records,
                uint32_t &Accepted, std::string &Error);

  bool stats(StatsResponse &Out, std::string &Error);

  /// Asks the server to shut down gracefully (flush shards, exit).
  bool shutdownServer(std::string &Error);

  RemoteClientStats clientStats() const;

  /// The default provenance string: "<hostname>/<pid>".
  static std::string defaultProvenance();

private:
  /// One request/response exchange with retry, backoff and breaker
  /// accounting. \p ExpectType is the only acceptable response type.
  bool rpc(MsgType Type, const std::string &Payload, MsgType ExpectType,
           std::string &RespPayload, std::string &Error);
  bool rpcOnce(MsgType Type, const std::string &Payload,
               MsgType ExpectType, std::string &RespPayload,
               std::string &Error);
  void disconnectLocked();

  RemoteClientOptions Opts;
  bool AddrValid = false;
  Address Addr;

  mutable std::mutex Mu;
  int Fd = -1;
  unsigned ConsecutiveFailures = 0;
  std::chrono::steady_clock::time_point BreakerOpenedAt{};
  bool BreakerOpen = false;
  RemoteClientStats Stats;
};

} // namespace wire
} // namespace vcdryad

#endif // VCDRYAD_WIRE_REMOTECACHE_H
