//===- CacheServer.h - Sharded remote proof-cache server --------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `vcdryad cached` process: a proof-cache server any number of
/// fleet clients share, so a Valid verdict proven on one machine is a
/// cache hit on every other. Architecture:
///
///   - N shards, each its own service::ProofCache (journaled store +
///     snapshot) rooted at <dir>/shard-NN. A record lands in the
///     shard selected by the leading byte of its VC hash, so writes
///     never contend across shards and the store scales with cores.
///     Shard stores reuse the exact durability stack local caches
///     use: WAL commit per transaction, crash-safe compaction,
///     flock'd cross-process safety.
///   - Listeners: TCP (default 127.0.0.1, port 0 = ephemeral — the
///     bound port is printed and exposed via port()) and/or a
///     Unix-domain socket. Both speak the same framed codec.
///   - One thread per connection; connections are persistent (many
///     request/response frames until EOF). The accept loop polls
///     with a short tick so SIGINT/SIGTERM (via
///     service::requestShutdown) and a wire Shutdown message both
///     stop the server promptly; shards flush on the way out.
///
/// Protocol errors (bad magic, version mismatch, corrupt frame) drop
/// the connection — the framing layer already guarantees a broken
/// stream can never be misparsed as a valid request.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_WIRE_CACHESERVER_H
#define VCDRYAD_WIRE_CACHESERVER_H

#include "service/ProofCache.h"
#include "wire/Codec.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace vcdryad {
namespace wire {

struct CacheServerOptions {
  /// Store root; shard I persists under <Dir>/shard-<I>.
  std::string Dir;
  unsigned Shards = 8;
  /// TCP listener; Port < 0 disables TCP, 0 binds an ephemeral port.
  std::string Host = "127.0.0.1";
  int Port = -1;
  /// Unix-domain listener; empty disables it.
  std::string SocketPath;
};

class CacheServer {
public:
  explicit CacheServer(CacheServerOptions Opts);
  ~CacheServer();

  CacheServer(const CacheServer &) = delete;
  CacheServer &operator=(const CacheServer &) = delete;

  /// Opens the shard stores and binds the listeners. False with
  /// \p Error on any failure (nothing is left half-bound).
  bool start(std::string &Error);

  /// Accept loop until a Shutdown frame, requestStop(), or
  /// service::requestShutdown(). Flushes every shard before
  /// returning. Returns a process exit code (0 = clean).
  int serve();

  /// The bound TCP port (after start(); 0 when TCP is disabled).
  uint16_t port() const { return BoundPort; }

  /// Async stop for in-process embedding (tests); serve() observes it
  /// within one poll tick.
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }

  unsigned shards() const { return static_cast<unsigned>(Stores.size()); }
  /// In-process shard access (tests assert on placement/persistence).
  service::ProofCache &shard(unsigned I) { return *Stores[I]; }

  StatsResponse statsSnapshot() const;

private:
  unsigned shardOf(uint64_t VcHash) const {
    return static_cast<unsigned>((VcHash >> 56) % Stores.size());
  }
  void handleConnection(int Fd);
  /// Dispatches one request frame; empty response means "drop the
  /// connection" (protocol violation). \p Close requests a graceful
  /// close after the response is sent.
  std::string handleFrame(MsgType Type, std::string_view Payload,
                          bool &Close);
  void closeListeners();

  CacheServerOptions Opts;
  std::vector<std::unique_ptr<service::ProofCache>> Stores;
  int TcpFd = -1;
  int UnixFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stop{false};
  // Connection threads are joined (after a shutdown(2) nudge on their
  // sockets) before serve() returns, so shard stores always outlive
  // every handler.
  std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
  std::unordered_set<int> ConnFds;
  // Server telemetry (StatsResponse).
  std::atomic<uint64_t> Gets{0}, GetHits{0}, GetMisses{0};
  std::atomic<uint64_t> Puts{0}, PutAccepted{0}, Connections{0};
};

} // namespace wire
} // namespace vcdryad

#endif // VCDRYAD_WIRE_CACHESERVER_H
