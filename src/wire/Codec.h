//===- Codec.h - Proof-sharing wire codec -----------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary wire format of the fleet proof-sharing protocol spoken
/// between the tiered cache client (service/ProofCache L3) and the
/// `vcdryad cached` shard server. One codec definition, no ad-hoc
/// parsing anywhere else: every message type below gets a mechanical
/// pack/unpack pair in the style a schema compiler (xdrgen) would
/// emit from a `protocol.xdr`, and both endpoints link the exact same
/// functions — a field added here is added everywhere or nowhere.
///
/// Schema (the `protocol.xdr` analog; all integers little-endian,
/// fixed width, strings u16-length-prefixed, vectors u32-counted):
///
///   frame          = magic:u32("VCDW") version:u16 type:u16
///                    payload_len:u32 checksum:u64(fnv1a payload)
///                    payload:bytes[payload_len]
///   ProofRecord    = vc_hash:u64 options_hash:u64 verdict:u8
///                    solve_time_us:u64 provenance:string<=255
///   GetRequest     = options_hash:u64 keys:u64[]          (multi-get;
///                    one key is the degenerate get)
///   GetResponse    = found:ProofRecord[]
///   PutRequest     = records:ProofRecord[]                (put-batch)
///   PutResponse    = accepted:u32
///   StatsRequest   = (empty)
///   StatsResponse  = shards:u32 entries:u64 gets:u64 get_hits:u64
///                    get_misses:u64 puts:u64 put_accepted:u64
///                    connections:u64
///   Shutdown       = (empty)
///   Ack            = (empty)
///
/// Framing is length-prefixed and checksummed: a frame is rejected —
/// never partially consumed — on bad magic, an unknown version, an
/// oversized length, or a checksum mismatch, so a corrupt or
/// truncated stream degrades to a transport error the client's
/// fallback path absorbs. The version is bumped on any layout change;
/// mixed-version fleets fail closed (BadVersion), they never
/// misparse.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_WIRE_CODEC_H
#define VCDRYAD_WIRE_CODEC_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vcdryad {
namespace wire {

/// "VCDW" as a little-endian u32 ('V' is the lowest byte on the wire).
constexpr uint32_t FrameMagic = 0x57444356u;
constexpr uint16_t WireVersion = 1;
/// Frame header: magic u32 + version u16 + type u16 + len u32 + sum u64.
constexpr size_t FrameHeaderBytes = 20;
/// Sanity cap on one payload. A multi-get over the whole SLL+ExpressOS
/// corpus is a few KiB; 4 MiB is framing garbage, not a real batch.
constexpr uint32_t MaxPayloadBytes = 4u << 20;
/// Provenance strings are telemetry; cap them so a record stays small.
constexpr size_t MaxProvenanceBytes = 255;

enum class MsgType : uint16_t {
  GetRequest = 1,
  GetResponse = 2,
  PutRequest = 3,
  PutResponse = 4,
  StatsRequest = 5,
  StatsResponse = 6,
  Shutdown = 7,
  Ack = 8,

  // Solver-worker protocol (smt/WorkerProto): the pipe-framed
  // request/response pairs between the supervised pool and a
  // `vcdryad solve-worker` child. Numbered from 32 so cache-server
  // messages and worker messages can never be confused on a
  // misdirected stream.
  WkInit = 32,          ///< SolverOptions; child answers WkOk.
  WkCheckValid = 33,    ///< (timeout, guard, goal); answers WkResult.
  WkResult = 34,        ///< CheckResult of a WkCheckValid/WkCheckSession.
  WkBeginSession = 35,  ///< (timeout, prefix conjuncts); answers WkOk.
  WkCheckSession = 36,  ///< (extra conjuncts, goal); answers WkResult.
  WkEndSession = 37,    ///< (); answers WkOk.
  WkBeginShared = 38,   ///< (timeout); answers WkOk.
  WkPushScope = 39,     ///< (prefix conjuncts); answers WkBool.
  WkPopScope = 40,      ///< (); answers WkOk.
  WkOk = 41,            ///< Empty acknowledgement.
  WkBool = 42,          ///< One u8 (pushSessionScope's result).
};

/// Verdicts on the wire. Only Valid is ever stored (the proof cache's
/// persistence policy); the field exists so the format does not need
/// a version bump if that policy is ever relaxed.
enum class WireVerdict : uint8_t { Valid = 1 };

/// One shareable proof result: the content-addressed obligation hash,
/// the options fingerprint it was solved under, the verdict, the
/// original solve time (microseconds — survives sub-ms fast-pass
/// times), and who proved it ("host/pid", telemetry only).
struct ProofRecord {
  uint64_t VcHash = 0;
  uint64_t OptionsHash = 0;
  uint8_t Verdict = static_cast<uint8_t>(WireVerdict::Valid);
  uint64_t SolveTimeMicros = 0;
  std::string Provenance;

  bool operator==(const ProofRecord &O) const {
    return VcHash == O.VcHash && OptionsHash == O.OptionsHash &&
           Verdict == O.Verdict && SolveTimeMicros == O.SolveTimeMicros &&
           Provenance == O.Provenance;
  }
};

struct GetRequest {
  uint64_t OptionsHash = 0;
  std::vector<uint64_t> Keys;
};

struct GetResponse {
  std::vector<ProofRecord> Found;
};

struct PutRequest {
  std::vector<ProofRecord> Records;
};

struct PutResponse {
  uint32_t Accepted = 0;
};

struct StatsResponse {
  uint32_t Shards = 0;
  uint64_t Entries = 0;
  uint64_t Gets = 0;
  uint64_t GetHits = 0;
  uint64_t GetMisses = 0;
  uint64_t Puts = 0;
  uint64_t PutAccepted = 0;
  uint64_t Connections = 0;
};

//===----------------------------------------------------------------------===//
// Primitive pack/unpack (the generated code's runtime)
//===----------------------------------------------------------------------===//

void packU8(std::string &Out, uint8_t V);
void packU16(std::string &Out, uint16_t V);
void packU32(std::string &Out, uint32_t V);
void packU64(std::string &Out, uint64_t V);
/// u16 length prefix; truncates at MaxProvenanceBytes on pack.
void packString(std::string &Out, std::string_view S);

/// Every unpack consumes from \p Buf at \p Pos and returns false —
/// leaving \p Pos unspecified — on truncation or a bound violation.
bool unpackU8(std::string_view Buf, size_t &Pos, uint8_t &V);
bool unpackU16(std::string_view Buf, size_t &Pos, uint16_t &V);
bool unpackU32(std::string_view Buf, size_t &Pos, uint32_t &V);
bool unpackU64(std::string_view Buf, size_t &Pos, uint64_t &V);
bool unpackString(std::string_view Buf, size_t &Pos, std::string &S);

//===----------------------------------------------------------------------===//
// Message pack/unpack (what xdrgen would emit per schema entry)
//===----------------------------------------------------------------------===//

void packProofRecord(std::string &Out, const ProofRecord &R);
bool unpackProofRecord(std::string_view Buf, size_t &Pos, ProofRecord &R);

void packGetRequest(std::string &Out, const GetRequest &M);
bool unpackGetRequest(std::string_view Buf, size_t &Pos, GetRequest &M);

void packGetResponse(std::string &Out, const GetResponse &M);
bool unpackGetResponse(std::string_view Buf, size_t &Pos, GetResponse &M);

void packPutRequest(std::string &Out, const PutRequest &M);
bool unpackPutRequest(std::string_view Buf, size_t &Pos, PutRequest &M);

void packPutResponse(std::string &Out, const PutResponse &M);
bool unpackPutResponse(std::string_view Buf, size_t &Pos, PutResponse &M);

void packStatsResponse(std::string &Out, const StatsResponse &M);
bool unpackStatsResponse(std::string_view Buf, size_t &Pos,
                         StatsResponse &M);

/// Unpacks a full message payload: the per-type unpack must consume
/// exactly \p Buf (trailing bytes are a framing error, not padding).
template <typename M, bool (*Unpack)(std::string_view, size_t &, M &)>
bool unpackExact(std::string_view Buf, M &Out) {
  size_t Pos = 0;
  return Unpack(Buf, Pos, Out) && Pos == Buf.size();
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

enum class FrameStatus {
  Ok,          ///< A complete, validated frame starts at Buf[0].
  NeedMore,    ///< Prefix of a valid frame; read more bytes.
  BadMagic,    ///< Not our protocol (or a desynchronized stream).
  BadVersion,  ///< A future (or corrupted) codec version.
  Oversized,   ///< payload_len exceeds MaxPayloadBytes.
  BadChecksum, ///< Payload bytes do not match the header checksum.
};

/// Serializes one frame: header (with payload checksum) + payload.
std::string packFrame(MsgType Type, std::string_view Payload);

/// Validates the frame at the head of \p Buf. On Ok, \p Type and
/// \p Payload (a view into \p Buf) and \p FrameLen (bytes consumed)
/// are set. Never consumes on error — the caller decides whether to
/// drop the connection (servers do) or surface a transport error.
/// \p MaxPayload is the Oversized threshold: cache-server streams
/// keep the 4 MiB default; the solver-worker pipes raise it (a
/// whole-function guard prefix DAG is legitimately larger).
FrameStatus peekFrame(std::string_view Buf, MsgType &Type,
                      std::string_view &Payload, size_t &FrameLen,
                      uint32_t MaxPayload = MaxPayloadBytes);

/// The server-side store key of one record: the VC hash crossed with
/// the options hash. hashObligation already salts in the options
/// fingerprint, so the fold is defense in depth against any future
/// salt-scheme drift between client versions — two clients disagree
/// on either component and they simply miss, never alias.
uint64_t storeKey(uint64_t VcHash, uint64_t OptionsHash);

} // namespace wire
} // namespace vcdryad

#endif // VCDRYAD_WIRE_CODEC_H
