//===- Net.cpp - Socket plumbing for the proof-sharing protocol -------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "wire/Net.h"

#include "support/StringUtil.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::wire;

namespace {

std::string errnoString() { return std::strerror(errno); }

/// Applies the remaining deadline as kernel-level send/receive
/// timeouts so every subsequent blocking read/write on the fd is
/// budget-bounded without per-call poll bookkeeping.
void applyIoTimeout(int Fd, unsigned TimeoutMs) {
  if (TimeoutMs == 0)
    TimeoutMs = 1; // A zero timeval means "block forever" — never that.
  timeval Tv;
  Tv.tv_sec = TimeoutMs / 1000;
  Tv.tv_usec = static_cast<long>(TimeoutMs % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

int connectDeadline(int Fd, const sockaddr *Addr, socklen_t Len,
                    unsigned TimeoutMs, std::string &Error) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int Rc = ::connect(Fd, Addr, Len);
  if (Rc != 0 && errno != EINPROGRESS) {
    Error = "connect: " + errnoString();
    ::close(Fd);
    return -1;
  }
  if (Rc != 0) {
    pollfd Pfd{Fd, POLLOUT, 0};
    int N = ::poll(&Pfd, 1, static_cast<int>(TimeoutMs));
    if (N <= 0) {
      Error = N == 0 ? "connect: timed out" : "poll: " + errnoString();
      ::close(Fd);
      return -1;
    }
    int Err = 0;
    socklen_t ErrLen = sizeof(Err);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &ErrLen) != 0 ||
        Err != 0) {
      Error = "connect: " + std::string(std::strerror(Err ? Err : errno));
      ::close(Fd);
      return -1;
    }
  }
  ::fcntl(Fd, F_SETFL, Flags);
  applyIoTimeout(Fd, TimeoutMs);
  return Fd;
}

} // namespace

bool wire::parseAddress(const std::string &Spec, Address &Out,
                        std::string &Error) {
  Out = Address{};
  if (startsWith(Spec, "unix:")) {
    Out.IsUnix = true;
    Out.Path = Spec.substr(5);
    if (Out.Path.empty()) {
      Error = "empty unix socket path in '" + Spec + "'";
      return false;
    }
    return true;
  }
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Spec.size()) {
    Error = "expected host:port or unix:/path, got '" + Spec + "'";
    return false;
  }
  std::optional<unsigned long> Port = parseUnsigned(Spec.substr(Colon + 1));
  if (!Port || *Port == 0 || *Port > 65535) {
    Error = "invalid port in '" + Spec + "'";
    return false;
  }
  Out.Host = Spec.substr(0, Colon);
  Out.Port = static_cast<uint16_t>(*Port);
  return true;
}

int wire::connectWithDeadline(const Address &Addr, unsigned TimeoutMs,
                              std::string &Error) {
  if (Addr.IsUnix) {
    sockaddr_un Sun{};
    Sun.sun_family = AF_UNIX;
    if (Addr.Path.size() >= sizeof(Sun.sun_path)) {
      Error = "unix socket path too long: '" + Addr.Path + "'";
      return -1;
    }
    std::memcpy(Sun.sun_path, Addr.Path.c_str(), Addr.Path.size() + 1);
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = "socket: " + errnoString();
      return -1;
    }
    return connectDeadline(Fd, reinterpret_cast<sockaddr *>(&Sun),
                           sizeof(Sun), TimeoutMs, Error);
  }

  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int Rc = ::getaddrinfo(Addr.Host.c_str(),
                         std::to_string(Addr.Port).c_str(), &Hints, &Res);
  if (Rc != 0) {
    Error = "resolve '" + Addr.Host + "': " + ::gai_strerror(Rc);
    return -1;
  }
  int Fd = -1;
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0)
      continue;
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Fd = connectDeadline(Fd, AI->ai_addr, AI->ai_addrlen, TimeoutMs,
                         Error);
    if (Fd >= 0)
      break;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0 && Error.empty())
    Error = "cannot connect to " + Addr.Host;
  return Fd;
}

bool wire::sendFrame(int Fd, MsgType Type, std::string_view Payload,
                     std::string &Error) {
  std::string Frame = packFrame(Type, Payload);
  const char *P = Frame.data();
  size_t Len = Frame.size();
  while (Len > 0) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = "send: " + errnoString();
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool wire::recvFrame(int Fd, MsgType &Type, std::string &Payload,
                     std::string &Error) {
  std::string Buf;
  char Chunk[1 << 16];
  for (;;) {
    std::string_view Body;
    size_t FrameLen = 0;
    switch (peekFrame(Buf, Type, Body, FrameLen)) {
    case FrameStatus::Ok:
      Payload.assign(Body.data(), Body.size());
      return true;
    case FrameStatus::NeedMore:
      break;
    case FrameStatus::BadMagic:
      Error = "frame: bad magic";
      return false;
    case FrameStatus::BadVersion:
      Error = "frame: protocol version mismatch";
      return false;
    case FrameStatus::Oversized:
      Error = "frame: oversized payload";
      return false;
    case FrameStatus::BadChecksum:
      Error = "frame: checksum mismatch";
      return false;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = (errno == EAGAIN || errno == EWOULDBLOCK)
                  ? "recv: timed out"
                  : "recv: " + errnoString();
      return false;
    }
    if (N == 0) {
      Error = Buf.empty() ? "recv: connection closed"
                          : "recv: truncated frame";
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}
