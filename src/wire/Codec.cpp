//===- Codec.cpp - Proof-sharing wire codec ---------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "wire/Codec.h"

#include "support/Hash.h"

using namespace vcdryad;
using namespace vcdryad::wire;

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

void wire::packU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void wire::packU16(std::string &Out, uint16_t V) {
  for (int I = 0; I != 2; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void wire::packU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void wire::packU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void wire::packString(std::string &Out, std::string_view S) {
  if (S.size() > MaxProvenanceBytes)
    S = S.substr(0, MaxProvenanceBytes);
  packU16(Out, static_cast<uint16_t>(S.size()));
  Out.append(S.data(), S.size());
}

bool wire::unpackU8(std::string_view Buf, size_t &Pos, uint8_t &V) {
  if (Buf.size() - Pos < 1 || Pos > Buf.size())
    return false;
  V = static_cast<uint8_t>(Buf[Pos++]);
  return true;
}

bool wire::unpackU16(std::string_view Buf, size_t &Pos, uint16_t &V) {
  if (Pos > Buf.size() || Buf.size() - Pos < 2)
    return false;
  V = 0;
  for (int I = 0; I != 2; ++I)
    V = static_cast<uint16_t>(
        V | static_cast<uint16_t>(static_cast<uint8_t>(Buf[Pos + I]))
                << (8 * I));
  Pos += 2;
  return true;
}

bool wire::unpackU32(std::string_view Buf, size_t &Pos, uint32_t &V) {
  if (Pos > Buf.size() || Buf.size() - Pos < 4)
    return false;
  V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos + I]))
         << (8 * I);
  Pos += 4;
  return true;
}

bool wire::unpackU64(std::string_view Buf, size_t &Pos, uint64_t &V) {
  if (Pos > Buf.size() || Buf.size() - Pos < 8)
    return false;
  V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos + I]))
         << (8 * I);
  Pos += 8;
  return true;
}

bool wire::unpackString(std::string_view Buf, size_t &Pos, std::string &S) {
  uint16_t Len = 0;
  if (!unpackU16(Buf, Pos, Len))
    return false;
  if (Len > MaxProvenanceBytes || Buf.size() - Pos < Len)
    return false;
  S.assign(Buf.data() + Pos, Len);
  Pos += Len;
  return true;
}

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

void wire::packProofRecord(std::string &Out, const ProofRecord &R) {
  packU64(Out, R.VcHash);
  packU64(Out, R.OptionsHash);
  packU8(Out, R.Verdict);
  packU64(Out, R.SolveTimeMicros);
  packString(Out, R.Provenance);
}

bool wire::unpackProofRecord(std::string_view Buf, size_t &Pos,
                             ProofRecord &R) {
  return unpackU64(Buf, Pos, R.VcHash) &&
         unpackU64(Buf, Pos, R.OptionsHash) &&
         unpackU8(Buf, Pos, R.Verdict) &&
         unpackU64(Buf, Pos, R.SolveTimeMicros) &&
         unpackString(Buf, Pos, R.Provenance);
}

namespace {

/// Vector count prefix, bounded so a corrupt count cannot drive a
/// multi-gigabyte reserve. Elements are at least MinElemBytes each,
/// so any count the remaining buffer cannot hold is rejected here.
bool unpackCount(std::string_view Buf, size_t &Pos, size_t MinElemBytes,
                 uint32_t &Count) {
  if (!wire::unpackU32(Buf, Pos, Count))
    return false;
  return static_cast<uint64_t>(Count) * MinElemBytes <= Buf.size() - Pos;
}

} // namespace

void wire::packGetRequest(std::string &Out, const GetRequest &M) {
  packU64(Out, M.OptionsHash);
  packU32(Out, static_cast<uint32_t>(M.Keys.size()));
  for (uint64_t K : M.Keys)
    packU64(Out, K);
}

bool wire::unpackGetRequest(std::string_view Buf, size_t &Pos,
                            GetRequest &M) {
  if (!unpackU64(Buf, Pos, M.OptionsHash))
    return false;
  uint32_t N = 0;
  if (!unpackCount(Buf, Pos, 8, N))
    return false;
  M.Keys.clear();
  M.Keys.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint64_t K = 0;
    if (!unpackU64(Buf, Pos, K))
      return false;
    M.Keys.push_back(K);
  }
  return true;
}

namespace {

/// ProofRecord floor: 8+8+1+8 fixed bytes + 2 string length.
constexpr size_t MinRecordBytes = 27;

void packRecordVec(std::string &Out,
                   const std::vector<ProofRecord> &Records) {
  wire::packU32(Out, static_cast<uint32_t>(Records.size()));
  for (const ProofRecord &R : Records)
    wire::packProofRecord(Out, R);
}

bool unpackRecordVec(std::string_view Buf, size_t &Pos,
                     std::vector<ProofRecord> &Records) {
  uint32_t N = 0;
  if (!unpackCount(Buf, Pos, MinRecordBytes, N))
    return false;
  Records.clear();
  Records.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    ProofRecord R;
    if (!wire::unpackProofRecord(Buf, Pos, R))
      return false;
    Records.push_back(std::move(R));
  }
  return true;
}

} // namespace

void wire::packGetResponse(std::string &Out, const GetResponse &M) {
  packRecordVec(Out, M.Found);
}

bool wire::unpackGetResponse(std::string_view Buf, size_t &Pos,
                             GetResponse &M) {
  return unpackRecordVec(Buf, Pos, M.Found);
}

void wire::packPutRequest(std::string &Out, const PutRequest &M) {
  packRecordVec(Out, M.Records);
}

bool wire::unpackPutRequest(std::string_view Buf, size_t &Pos,
                            PutRequest &M) {
  return unpackRecordVec(Buf, Pos, M.Records);
}

void wire::packPutResponse(std::string &Out, const PutResponse &M) {
  packU32(Out, M.Accepted);
}

bool wire::unpackPutResponse(std::string_view Buf, size_t &Pos,
                             PutResponse &M) {
  return unpackU32(Buf, Pos, M.Accepted);
}

void wire::packStatsResponse(std::string &Out, const StatsResponse &M) {
  packU32(Out, M.Shards);
  packU64(Out, M.Entries);
  packU64(Out, M.Gets);
  packU64(Out, M.GetHits);
  packU64(Out, M.GetMisses);
  packU64(Out, M.Puts);
  packU64(Out, M.PutAccepted);
  packU64(Out, M.Connections);
}

bool wire::unpackStatsResponse(std::string_view Buf, size_t &Pos,
                               StatsResponse &M) {
  return unpackU32(Buf, Pos, M.Shards) && unpackU64(Buf, Pos, M.Entries) &&
         unpackU64(Buf, Pos, M.Gets) && unpackU64(Buf, Pos, M.GetHits) &&
         unpackU64(Buf, Pos, M.GetMisses) && unpackU64(Buf, Pos, M.Puts) &&
         unpackU64(Buf, Pos, M.PutAccepted) &&
         unpackU64(Buf, Pos, M.Connections);
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

std::string wire::packFrame(MsgType Type, std::string_view Payload) {
  std::string Out;
  Out.reserve(FrameHeaderBytes + Payload.size());
  packU32(Out, FrameMagic);
  packU16(Out, WireVersion);
  packU16(Out, static_cast<uint16_t>(Type));
  packU32(Out, static_cast<uint32_t>(Payload.size()));
  packU64(Out, Fnv1a().bytes(Payload.data(), Payload.size()).digest());
  Out.append(Payload.data(), Payload.size());
  return Out;
}

FrameStatus wire::peekFrame(std::string_view Buf, MsgType &Type,
                            std::string_view &Payload, size_t &FrameLen,
                            uint32_t MaxPayload) {
  // Validate eagerly, field by field: a bad magic or version is
  // reported even from a short prefix, so a desynchronized stream
  // fails fast instead of waiting for bytes that never come.
  size_t Pos = 0;
  uint32_t Magic = 0;
  if (Buf.size() >= 4) {
    (void)unpackU32(Buf, Pos, Magic);
    if (Magic != FrameMagic)
      return FrameStatus::BadMagic;
  }
  uint16_t Version = 0;
  if (Buf.size() >= 6) {
    (void)unpackU16(Buf, Pos, Version);
    if (Version != WireVersion)
      return FrameStatus::BadVersion;
  }
  uint32_t Len = 0;
  if (Buf.size() >= 12) {
    uint16_t RawType = 0;
    size_t P = 6;
    (void)unpackU16(Buf, P, RawType);
    (void)unpackU32(Buf, P, Len);
    if (Len > MaxPayload)
      return FrameStatus::Oversized;
  }
  if (Buf.size() < FrameHeaderBytes)
    return FrameStatus::NeedMore;
  size_t P = 6;
  uint16_t RawType = 0;
  uint64_t Sum = 0;
  (void)unpackU16(Buf, P, RawType);
  (void)unpackU32(Buf, P, Len);
  (void)unpackU64(Buf, P, Sum);
  if (Buf.size() - FrameHeaderBytes < Len)
    return FrameStatus::NeedMore;
  std::string_view Body = Buf.substr(FrameHeaderBytes, Len);
  if (Fnv1a().bytes(Body.data(), Body.size()).digest() != Sum)
    return FrameStatus::BadChecksum;
  Type = static_cast<MsgType>(RawType);
  Payload = Body;
  FrameLen = FrameHeaderBytes + Len;
  return FrameStatus::Ok;
}

uint64_t wire::storeKey(uint64_t VcHash, uint64_t OptionsHash) {
  return Fnv1a().u64(VcHash).u64(OptionsHash).digest();
}
