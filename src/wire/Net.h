//===- Net.h - Socket plumbing for the proof-sharing protocol ---*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the wire codec, shared by the RemoteCache
/// client and the `vcdryad cached` server: address parsing
/// ("host:port" or "unix:/path"), deadline-bounded connect, and
/// whole-frame send/receive built on Codec.h framing. Everything here
/// reports failures as error strings, never exceptions — the cache
/// tiers treat any transport problem as a miss.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_WIRE_NET_H
#define VCDRYAD_WIRE_NET_H

#include "wire/Codec.h"

#include <cstdint>
#include <string>

namespace vcdryad {
namespace wire {

/// A parsed server address. Two forms:
///   "unix:/path/to/socket"  — Unix-domain stream socket
///   "host:port"             — TCP (numeric or resolvable host)
struct Address {
  bool IsUnix = false;
  std::string Path; ///< Unix socket path.
  std::string Host; ///< TCP host.
  uint16_t Port = 0;
};

/// Parses \p Spec into \p Out; false with \p Error set on a malformed
/// address (no port, port out of range, empty path).
bool parseAddress(const std::string &Spec, Address &Out,
                  std::string &Error);

/// Connects with a deadline: non-blocking connect + poll, then the
/// socket is switched back to blocking with SO_RCVTIMEO/SO_SNDTIMEO
/// set to the remaining budget. Returns the fd, or -1 with \p Error.
int connectWithDeadline(const Address &Addr, unsigned TimeoutMs,
                        std::string &Error);

/// Writes one whole frame; false on any IO error (including a send
/// timeout from SO_SNDTIMEO).
bool sendFrame(int Fd, MsgType Type, std::string_view Payload,
               std::string &Error);

/// Reads exactly one frame, validating as bytes arrive (peekFrame).
/// False on EOF, IO errors, receive timeout, or a framing violation
/// (\p Error names which). \p Payload is an owned copy.
bool recvFrame(int Fd, MsgType &Type, std::string &Payload,
               std::string &Error);

} // namespace wire
} // namespace vcdryad

#endif // VCDRYAD_WIRE_NET_H
