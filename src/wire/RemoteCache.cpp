//===- RemoteCache.cpp - Remote proof-cache client (L3 tier) ----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "wire/RemoteCache.h"

#include "wire/Net.h"

#include <thread>

#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::wire;

std::string RemoteCache::defaultProvenance() {
  char Host[256] = "?";
  ::gethostname(Host, sizeof(Host) - 1);
  Host[sizeof(Host) - 1] = '\0';
  return std::string(Host) + "/" + std::to_string(::getpid());
}

RemoteCache::RemoteCache(RemoteClientOptions OptsIn)
    : Opts(std::move(OptsIn)) {
  std::string Error;
  AddrValid = parseAddress(Opts.Address, Addr, Error);
  if (Opts.Provenance.empty())
    Opts.Provenance = defaultProvenance();
}

RemoteCache::~RemoteCache() {
  std::lock_guard<std::mutex> Lock(Mu);
  disconnectLocked();
}

void RemoteCache::disconnectLocked() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool RemoteCache::rpcOnce(MsgType Type, const std::string &Payload,
                          MsgType ExpectType, std::string &RespPayload,
                          std::string &Error) {
  if (Fd < 0) {
    Fd = connectWithDeadline(Addr, Opts.TimeoutMs, Error);
    if (Fd < 0)
      return false;
    ++Stats.Reconnects;
  }
  if (!sendFrame(Fd, Type, Payload, Error)) {
    disconnectLocked();
    return false;
  }
  MsgType Got;
  if (!recvFrame(Fd, Got, RespPayload, Error)) {
    disconnectLocked();
    return false;
  }
  if (Got != ExpectType) {
    Error = "unexpected response type " +
            std::to_string(static_cast<unsigned>(Got));
    disconnectLocked();
    return false;
  }
  return true;
}

bool RemoteCache::rpc(MsgType Type, const std::string &Payload,
                      MsgType ExpectType, std::string &RespPayload,
                      std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Ops;
  if (!AddrValid) {
    Error = "invalid remote address '" + Opts.Address + "'";
    ++Stats.Errors;
    return false;
  }
  // Circuit breaker: a dead server must not cost a connect timeout
  // per operation. Open after BreakerThreshold consecutive failures;
  // after the cool-down the next operation probes again (half-open).
  if (BreakerOpen) {
    auto Elapsed = std::chrono::steady_clock::now() - BreakerOpenedAt;
    if (Elapsed <
        std::chrono::milliseconds(Opts.BreakerCooldownMs)) {
      Error = "remote cache unavailable (circuit open)";
      ++Stats.Errors;
      return false;
    }
    BreakerOpen = false; // Half-open: one probe.
  }
  unsigned Backoff = Opts.BackoffMs;
  for (unsigned Attempt = 0;; ++Attempt) {
    if (rpcOnce(Type, Payload, ExpectType, RespPayload, Error)) {
      ConsecutiveFailures = 0;
      return true;
    }
    if (Attempt >= Opts.Retries)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    Backoff *= 2;
  }
  if (++ConsecutiveFailures >= Opts.BreakerThreshold) {
    BreakerOpen = true;
    BreakerOpenedAt = std::chrono::steady_clock::now();
  }
  ++Stats.Errors;
  return false;
}

bool RemoteCache::multiGet(uint64_t OptionsHash,
                           const std::vector<uint64_t> &Keys,
                           std::vector<ProofRecord> &Found,
                           std::string &Error) {
  GetRequest Req;
  Req.OptionsHash = OptionsHash;
  Req.Keys = Keys;
  std::string Payload, Resp;
  packGetRequest(Payload, Req);
  if (!rpc(MsgType::GetRequest, Payload, MsgType::GetResponse, Resp,
           Error))
    return false;
  GetResponse R;
  if (!unpackExact<GetResponse, unpackGetResponse>(Resp, R)) {
    Error = "malformed GetResponse";
    return false;
  }
  Found = std::move(R.Found);
  return true;
}

bool RemoteCache::putBatch(const std::vector<ProofRecord> &Records,
                           uint32_t &Accepted, std::string &Error) {
  PutRequest Req;
  Req.Records = Records;
  for (ProofRecord &R : Req.Records)
    if (R.Provenance.empty())
      R.Provenance = Opts.Provenance;
  std::string Payload, Resp;
  packPutRequest(Payload, Req);
  if (!rpc(MsgType::PutRequest, Payload, MsgType::PutResponse, Resp,
           Error))
    return false;
  PutResponse R;
  if (!unpackExact<PutResponse, unpackPutResponse>(Resp, R)) {
    Error = "malformed PutResponse";
    return false;
  }
  Accepted = R.Accepted;
  return true;
}

bool RemoteCache::stats(StatsResponse &Out, std::string &Error) {
  std::string Resp;
  if (!rpc(MsgType::StatsRequest, {}, MsgType::StatsResponse, Resp,
           Error))
    return false;
  if (!unpackExact<StatsResponse, unpackStatsResponse>(Resp, Out)) {
    Error = "malformed StatsResponse";
    return false;
  }
  return true;
}

bool RemoteCache::shutdownServer(std::string &Error) {
  std::string Resp;
  return rpc(MsgType::Shutdown, {}, MsgType::Ack, Resp, Error);
}

RemoteClientStats RemoteCache::clientStats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}
