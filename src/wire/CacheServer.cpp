//===- CacheServer.cpp - Sharded remote proof-cache server -----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "wire/CacheServer.h"

#include "service/Service.h"
#include "wire/Net.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::wire;

namespace fs = std::filesystem;

namespace {

std::string errnoString() { return std::strerror(errno); }

/// Send/receive budget per connection-socket operation. Generous: this
/// bounds a *stalled mid-frame* peer, not idle time (idleness is
/// handled by poll ticks before recvFrame is ever entered).
constexpr unsigned ConnIoTimeoutMs = 5000;

void applyConnTimeouts(int Fd) {
  timeval Tv;
  Tv.tv_sec = ConnIoTimeoutMs / 1000;
  Tv.tv_usec = static_cast<long>(ConnIoTimeoutMs % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

} // namespace

CacheServer::CacheServer(CacheServerOptions OptsIn)
    : Opts(std::move(OptsIn)) {
  if (Opts.Shards == 0)
    Opts.Shards = 1;
}

CacheServer::~CacheServer() { closeListeners(); }

bool CacheServer::start(std::string &Error) {
  if (Opts.Port < 0 && Opts.SocketPath.empty()) {
    Error = "no listener configured (need a TCP port or a socket path)";
    return false;
  }
  for (unsigned I = 0; I != Opts.Shards; ++I) {
    auto Store = std::make_unique<service::ProofCache>(
        (fs::path(Opts.Dir) / ("shard-" + std::to_string(I))).string());
    if (!Store->openError().empty()) {
      Error = Store->openError();
      Stores.clear();
      return false;
    }
    Stores.push_back(std::move(Store));
  }

  if (Opts.Port >= 0) {
    addrinfo Hints{};
    Hints.ai_family = AF_UNSPEC;
    Hints.ai_socktype = SOCK_STREAM;
    Hints.ai_flags = AI_PASSIVE;
    addrinfo *Res = nullptr;
    int Rc = ::getaddrinfo(Opts.Host.c_str(),
                           std::to_string(Opts.Port).c_str(), &Hints,
                           &Res);
    if (Rc != 0) {
      Error = "resolve '" + Opts.Host + "': " + ::gai_strerror(Rc);
      Stores.clear();
      return false;
    }
    for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
      TcpFd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
      if (TcpFd < 0)
        continue;
      int One = 1;
      ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
      if (::bind(TcpFd, AI->ai_addr, AI->ai_addrlen) == 0 &&
          ::listen(TcpFd, 64) == 0)
        break;
      ::close(TcpFd);
      TcpFd = -1;
    }
    ::freeaddrinfo(Res);
    if (TcpFd < 0) {
      Error = "cannot listen on " + Opts.Host + ":" +
              std::to_string(Opts.Port) + ": " + errnoString();
      Stores.clear();
      return false;
    }
    // Port 0 asked the kernel for an ephemeral port; read it back.
    sockaddr_storage Ss{};
    socklen_t SsLen = sizeof(Ss);
    if (::getsockname(TcpFd, reinterpret_cast<sockaddr *>(&Ss),
                      &SsLen) == 0) {
      if (Ss.ss_family == AF_INET)
        BoundPort =
            ntohs(reinterpret_cast<sockaddr_in *>(&Ss)->sin_port);
      else if (Ss.ss_family == AF_INET6)
        BoundPort =
            ntohs(reinterpret_cast<sockaddr_in6 *>(&Ss)->sin6_port);
    }
  }

  if (!Opts.SocketPath.empty()) {
    sockaddr_un Sun{};
    Sun.sun_family = AF_UNIX;
    if (Opts.SocketPath.size() >= sizeof(Sun.sun_path)) {
      Error = "socket path too long: '" + Opts.SocketPath + "'";
      closeListeners();
      Stores.clear();
      return false;
    }
    std::memcpy(Sun.sun_path, Opts.SocketPath.c_str(),
                Opts.SocketPath.size() + 1);
    UnixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (UnixFd < 0) {
      Error = "socket: " + errnoString();
      closeListeners();
      Stores.clear();
      return false;
    }
    if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Sun),
               sizeof(Sun)) != 0) {
      // A stale socket file from a crashed server is reclaimable iff
      // nothing answers on it (same probe discipline as the daemon).
      bool Reclaimed = false;
      if (errno == EADDRINUSE) {
        int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (Probe >= 0) {
          bool Alive = ::connect(Probe,
                                 reinterpret_cast<sockaddr *>(&Sun),
                                 sizeof(Sun)) == 0;
          ::close(Probe);
          if (!Alive) {
            ::unlink(Opts.SocketPath.c_str());
            Reclaimed = ::bind(UnixFd,
                               reinterpret_cast<sockaddr *>(&Sun),
                               sizeof(Sun)) == 0;
          }
        }
      }
      if (!Reclaimed) {
        Error = "cannot bind '" + Opts.SocketPath +
                "': " + errnoString();
        closeListeners();
        Stores.clear();
        return false;
      }
    }
    if (::listen(UnixFd, 64) != 0) {
      Error = "cannot listen on '" + Opts.SocketPath +
              "': " + errnoString();
      closeListeners();
      Stores.clear();
      return false;
    }
  }
  return true;
}

void CacheServer::closeListeners() {
  if (TcpFd >= 0) {
    ::close(TcpFd);
    TcpFd = -1;
  }
  if (UnixFd >= 0) {
    ::close(UnixFd);
    UnixFd = -1;
  }
}

int CacheServer::serve() {
  ::signal(SIGPIPE, SIG_IGN);
  while (!Stop.load(std::memory_order_relaxed) &&
         !service::shutdownRequested()) {
    pollfd Pfds[2];
    nfds_t N = 0;
    if (TcpFd >= 0)
      Pfds[N++] = pollfd{TcpFd, POLLIN, 0};
    if (UnixFd >= 0)
      Pfds[N++] = pollfd{UnixFd, POLLIN, 0};
    int Ready = ::poll(Pfds, N, 200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // Signal: loop re-checks the stop conditions.
      break;
    }
    if (Ready == 0)
      continue;
    for (nfds_t I = 0; I != N; ++I) {
      if (!(Pfds[I].revents & POLLIN))
        continue;
      int Cfd = ::accept(Pfds[I].fd, nullptr, nullptr);
      if (Cfd < 0)
        continue;
      applyConnTimeouts(Cfd);
      Connections.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> Lock(ConnMu);
      ConnFds.insert(Cfd);
      ConnThreads.emplace_back([this, Cfd] { handleConnection(Cfd); });
    }
  }
  closeListeners();
  // Nudge every live connection out of a blocking read, then join:
  // handlers must never outlive the shard stores.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    Stop.store(true, std::memory_order_relaxed);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
  for (auto &Store : Stores)
    Store->flush();
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
  return 0;
}

void CacheServer::handleConnection(int Fd) {
  for (;;) {
    // Idle-wait on a short tick so the connection observes shutdown
    // promptly; recvFrame's own timeout only bounds a mid-frame stall.
    pollfd Pfd{Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Stop.load(std::memory_order_relaxed))
      break;
    if (Ready == 0)
      continue;
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    MsgType Type;
    std::string Payload, Error;
    if (!recvFrame(Fd, Type, Payload, Error))
      break; // EOF, IO error, or framing violation: drop.
    bool Close = false;
    std::string Resp = handleFrame(Type, Payload, Close);
    if (Resp.empty())
      break; // Protocol violation: drop without answering.
    const char *P = Resp.data();
    size_t Len = Resp.size();
    bool SendOk = true;
    while (Len > 0) {
      ssize_t W = ::send(Fd, P, Len, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        SendOk = false;
        break;
      }
      P += W;
      Len -= static_cast<size_t>(W);
    }
    if (!SendOk || Close)
      break;
  }
  ::close(Fd);
  std::lock_guard<std::mutex> Lock(ConnMu);
  ConnFds.erase(Fd);
}

std::string CacheServer::handleFrame(MsgType Type,
                                     std::string_view Payload,
                                     bool &Close) {
  switch (Type) {
  case MsgType::GetRequest: {
    GetRequest Req;
    if (!unpackExact<GetRequest, unpackGetRequest>(Payload, Req))
      return {};
    Gets.fetch_add(1, std::memory_order_relaxed);
    GetResponse Resp;
    for (uint64_t VcHash : Req.Keys) {
      service::ProofCache &Shard = *Stores[shardOf(VcHash)];
      auto R = Shard.lookup(storeKey(VcHash, Req.OptionsHash));
      if (!R) {
        GetMisses.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      GetHits.fetch_add(1, std::memory_order_relaxed);
      ProofRecord Rec;
      Rec.VcHash = VcHash;
      Rec.OptionsHash = Req.OptionsHash;
      Rec.SolveTimeMicros = static_cast<uint64_t>(
          std::llround(std::max(R->TimeMs, 0.0) * 1000.0));
      Resp.Found.push_back(std::move(Rec));
    }
    std::string Out;
    packGetResponse(Out, Resp);
    return packFrame(MsgType::GetResponse, Out);
  }
  case MsgType::PutRequest: {
    PutRequest Req;
    if (!unpackExact<PutRequest, unpackPutRequest>(Payload, Req))
      return {};
    Puts.fetch_add(1, std::memory_order_relaxed);
    // Partition by shard so each shard takes one journal transaction
    // (one fsync) regardless of batch size — and shards never contend.
    std::vector<std::vector<std::pair<uint64_t, double>>> PerShard(
        Stores.size());
    for (const ProofRecord &Rec : Req.Records) {
      if (Rec.Verdict != static_cast<uint8_t>(WireVerdict::Valid))
        continue; // Only proven-Valid records are shareable facts.
      PerShard[shardOf(Rec.VcHash)].emplace_back(
          storeKey(Rec.VcHash, Rec.OptionsHash),
          static_cast<double>(Rec.SolveTimeMicros) / 1000.0);
    }
    PutResponse Resp;
    for (size_t I = 0; I != PerShard.size(); ++I)
      if (!PerShard[I].empty())
        Resp.Accepted +=
            static_cast<uint32_t>(Stores[I]->storeBatch(PerShard[I]));
    PutAccepted.fetch_add(Resp.Accepted, std::memory_order_relaxed);
    std::string Out;
    packPutResponse(Out, Resp);
    return packFrame(MsgType::PutResponse, Out);
  }
  case MsgType::StatsRequest: {
    std::string Out;
    StatsResponse Resp = statsSnapshot();
    packStatsResponse(Out, Resp);
    return packFrame(MsgType::StatsResponse, Out);
  }
  case MsgType::Shutdown:
    requestStop();
    Close = true;
    return packFrame(MsgType::Ack, {});
  default:
    return {}; // Not a request type: protocol violation.
  }
}

StatsResponse CacheServer::statsSnapshot() const {
  StatsResponse S;
  S.Shards = static_cast<uint32_t>(Stores.size());
  for (const auto &Store : Stores)
    S.Entries += Store->size();
  S.Gets = Gets.load(std::memory_order_relaxed);
  S.GetHits = GetHits.load(std::memory_order_relaxed);
  S.GetMisses = GetMisses.load(std::memory_order_relaxed);
  S.Puts = Puts.load(std::memory_order_relaxed);
  S.PutAccepted = PutAccepted.load(std::memory_order_relaxed);
  S.Connections = Connections.load(std::memory_order_relaxed);
  return S;
}
