//===- custom_structure.cpp - Verifying a user-defined structure -----------==//
//
// Part of the VCDryad-Repro project.
//
// Domain example: an interval list for an allocator — each cell owns a
// [start, end) range and a nested descriptor object, and the list
// keeps intervals disjoint and ordered: end of one <= start of next.
// Shows multi-struct heaps, nested ownership via separation, and
// integer reasoning mixed with shape reasoning.
//
// Build & run:  ./build/examples/custom_structure
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include <cstdio>

using namespace vcdryad;

int main() {
  const char *Source = R"(
struct desc { int owner; };
struct ival { struct ival *next; struct desc *d; int start; int end; };

_(dryad
  // Every cell owns its descriptor (separately), keeps start <= end,
  // and precedes the rest of the list: end <= all later starts.
  function intset istarts(struct ival *x) =
      (x == nil) ? emptyset : (singleton(x->start) union istarts(x->next));

  predicate descr(struct desc *d) = (d == nil && emp) || d |->;

  predicate ivlist(struct ival *x) =
      (x == nil && emp) ||
      ((x |-> && x->start <= x->end && x->end <= istarts(x->next))
       * descr(x->d) * ivlist(x->next));

  axiom (struct ival *x)
      true ==> heaplet istarts(x) subset heaplet ivlist(x);
)

// Carve the front of the head interval into a fresh interval.
void carve_front(struct ival *x, int m, int who)
  _(requires ivlist(x) && x != nil)
  _(requires x->start <= m && m <= x->end)
  _(ensures ivlist(x))
{
  struct ival *r = (struct ival *) malloc(sizeof(struct ival));
  struct desc *d = (struct desc *) malloc(sizeof(struct desc));
  d->owner = who;
  r->d = d;
  r->start = m;
  r->end = x->end;
  r->next = x->next;
  x->end = m;
  x->next = r;
}
)";

  verifier::Verifier V;
  verifier::ProgramResult R = V.verifySource(Source);
  if (!R.Ok) {
    std::printf("frontend errors:\n%s\n", R.Error.c_str());
    return 1;
  }
  for (const auto &F : R.Functions)
    std::printf("%s: %s (%.2fs)\n", F.Name.c_str(),
                F.Verified ? "VERIFIED" : "FAILED", F.TimeMs / 1000.0);
  return R.AllVerified ? 0 : 1;
}
