//===- quickstart.cpp - Verify your first program with the library ---------==//
//
// Part of the VCDryad-Repro project.
//
// The 60-second tour: define a data structure in DRYAD, write a C
// routine with a separation-logic contract, and let natural proofs
// verify it — all through the library's public API (no files needed).
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include <cstdio>

using namespace vcdryad;

int main() {
  // A singly-linked list with its key-set abstraction, plus one
  // data-structure axiom relating the two heap domains (Section 4.3
  // of the paper), and an annotated insert-front routine.
  const char *Source = R"(
struct node { struct node *next; int key; };

_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  axiom (struct node *x) true ==> heaplet keys(x) == heaplet list(x);
)

struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
)";

  verifier::Verifier V;
  verifier::ProgramResult R = V.verifySource(Source);
  if (!R.Ok) {
    std::printf("frontend errors:\n%s\n", R.Error.c_str());
    return 1;
  }
  for (const auto &F : R.Functions) {
    std::printf("%s: %s (%u proof obligations, %.2fs)\n",
                F.Name.c_str(), F.Verified ? "VERIFIED" : "FAILED",
                F.NumVCs, F.TimeMs / 1000.0);
    std::printf("  annotations: %u written by hand, %u synthesized by "
                "the natural-proof instrumentation\n",
                F.Annotations.Manual, F.Annotations.Ghost);
  }
  return R.AllVerified ? 0 : 1;
}
