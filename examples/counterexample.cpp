//===- counterexample.cpp - Debugging a failed proof ------------------------==//
//
// Part of the VCDryad-Repro project.
//
// Section 4.4 workflow: when a proof fails, the verifier reports which
// obligation broke (with source location) and the SMT counterexample
// model, and the intermediate artifacts (instrumented program, VIR)
// are available for inspection. This example verifies a buggy BST
// insertion that drops the right subtree.
//
// Build & run:  ./build/examples/counterexample
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "instr/Instrument.h"
#include "verifier/Verifier.h"

#include <cstdio>

using namespace vcdryad;

int main() {
  const char *Source = R"(
struct bnode { struct bnode *l; struct bnode *r; int key; };

_(dryad
  function intset bkeys(struct bnode *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->key) union bkeys(x->l)) union bkeys(x->r));
  predicate bst(struct bnode *x) =
      (x == nil && emp) ||
      (x |-> * (bst(x->l) && bkeys(x->l) < x->key)
            * (bst(x->r) && x->key < bkeys(x->r)));
  axiom (struct bnode *x)
      true ==> heaplet bkeys(x) == heaplet bst(x);
)

struct bnode *bst_insert_buggy(struct bnode *x, int k)
  _(requires bst(x) && !(k in bkeys(x)))
  _(ensures bst(result))
  _(ensures bkeys(result) == (old(bkeys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct bnode *leaf = (struct bnode *) malloc(sizeof(struct bnode));
    leaf->key = k;
    leaf->l = NULL;
    leaf->r = NULL;
    return leaf;
  }
  if (k < x->key) {
    struct bnode *t = bst_insert_rec_bug_helper(x, k);
    return t;
  }
  struct bnode *t2 = bst_insert_buggy(x->r, k);
  x->r = t2;
  return x;
}
)";
  // The helper is intentionally undeclared above; use a simpler bug:
  const char *Buggy = R"(
struct bnode { struct bnode *l; struct bnode *r; int key; };

_(dryad
  function intset bkeys(struct bnode *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->key) union bkeys(x->l)) union bkeys(x->r));
  predicate bst(struct bnode *x) =
      (x == nil && emp) ||
      (x |-> * (bst(x->l) && bkeys(x->l) < x->key)
            * (bst(x->r) && x->key < bkeys(x->r)));
  axiom (struct bnode *x)
      true ==> heaplet bkeys(x) == heaplet bst(x);
)

struct bnode *bst_insert_buggy(struct bnode *x, int k)
  _(requires bst(x) && !(k in bkeys(x)))
  _(ensures bst(result))
  _(ensures bkeys(result) == (old(bkeys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct bnode *leaf = (struct bnode *) malloc(sizeof(struct bnode));
    leaf->key = k;
    leaf->l = NULL;
    leaf->r = NULL;
    return leaf;
  }
  if (k < x->key) {
    struct bnode *t = bst_insert_buggy(x->l, k);
    x->l = t;
    x->r = NULL;   // BUG: drops the right subtree.
    return x;
  }
  struct bnode *t2 = bst_insert_buggy(x->r, k);
  x->r = t2;
  return x;
}
)";
  (void)Source;

  verifier::VerifyOptions Opts;
  Opts.StopAtFirstFailure = false; // Report every broken obligation.
  verifier::Verifier V(Opts);
  verifier::ProgramResult R = V.verifySource(Buggy);
  if (!R.Ok) {
    std::printf("frontend errors:\n%s\n", R.Error.c_str());
    return 1;
  }
  bool SawFailure = false;
  for (const auto &F : R.Functions) {
    std::printf("%s: %s\n", F.Name.c_str(),
                F.Verified ? "VERIFIED (unexpected!)" : "FAILED as expected");
    for (const auto &O : F.Failures) {
      SawFailure = true;
      std::printf("  broken obligation at %s: %s\n", O.Loc.str().c_str(),
                  O.Reason.c_str());
      std::printf("  counterexample (truncated):\n%.400s\n",
                  O.Detail.c_str());
      break; // One model is enough for the demo.
    }
  }
  // A verifier that accepts buggy code would be useless: failing to
  // fail is this example's error condition.
  return SawFailure ? 0 : 1;
}
